package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"redhanded/internal/ingestlog"
	"redhanded/internal/twitterdata"
)

// TestIngestFastLegacyEquivalence runs the same NDJSON batch — valid
// lines, malformed lines, blank lines — through a fast-decode server and
// a LegacyJSONDecode server and demands identical outcomes: the same
// IngestResponse and, after processing, the same per-shard pipeline
// fingerprints. The fuzz oracle proves the decoders agree tweet by
// tweet; this proves the servers agree end to end.
func TestIngestFastLegacyEquivalence(t *testing.T) {
	tweets := walTweets(120)
	var body bytes.Buffer
	for i := range tweets {
		if i%17 == 0 {
			body.WriteString("{\"id_str\": broken\n") // malformed
			continue
		}
		if i%23 == 0 {
			body.WriteByte('\n') // blank
			continue
		}
		blob, err := tweets[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		body.Write(blob)
		body.WriteByte('\n')
	}
	raw := body.Bytes()

	run := func(legacy bool) (IngestResponse, []pipelineFingerprint) {
		opts := testOptions()
		opts.Shards = 2
		opts.LegacyJSONDecode = legacy
		s := NewServer(opts)
		defer drainServer(t, s)
		ts := httptest.NewServer(s)
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var ir IngestResponse
		if err := jsonDecodeBody(resp, &ir); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("legacy=%v: status %d (%+v)", legacy, resp.StatusCode, ir)
		}
		waitProcessed(t, s, ir.Accepted)
		fps := make([]pipelineFingerprint, s.Shards())
		for i := range fps {
			fps[i] = fingerprint(s, i)
		}
		return ir, fps
	}

	fastIR, fastFP := run(false)
	legacyIR, legacyFP := run(true)
	if fastIR != legacyIR {
		t.Fatalf("ingest responses diverge: fast=%+v legacy=%+v", fastIR, legacyIR)
	}
	if fastIR.Malformed == 0 {
		t.Fatal("batch contained malformed lines but none were counted")
	}
	if !reflect.DeepEqual(fastFP, legacyFP) {
		t.Fatalf("pipeline fingerprints diverge:\nfast:   %+v\nlegacy: %+v", fastFP, legacyFP)
	}
}

// TestClassifyFastDecodeBehavior checks the synchronous endpoint on the
// fast path: a valid document classifies with the same verdict the
// legacy decoder produces, a malformed document is 400 on both paths,
// and trailing garbage after the document is rejected by the fast path
// (a deliberate tightening over json.NewDecoder's stream semantics).
func TestClassifyFastDecodeBehavior(t *testing.T) {
	post := func(ts *httptest.Server, body string) (*http.Response, ClassifyResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var cr ClassifyResponse
		_ = jsonDecodeBody(resp, &cr)
		return resp, cr
	}
	tw := makeTweet("900", "77", "you are a worthless idiot", "")
	blob, err := tw.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	var verdicts [2]ClassifyResponse
	for i, legacy := range []bool{false, true} {
		opts := testOptions()
		opts.LegacyJSONDecode = legacy
		s := NewServer(opts)
		ts := httptest.NewServer(s)
		resp, cr := post(ts, string(blob))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("legacy=%v: classify status %d", legacy, resp.StatusCode)
		}
		verdicts[i] = cr
		if resp, _ := post(ts, `{"id_str": nope}`); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("legacy=%v: malformed classify status %d, want 400", legacy, resp.StatusCode)
		}
		if !legacy {
			if resp, _ := post(ts, string(blob)+"trailing"); resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("fast path accepted trailing garbage: status %d", resp.StatusCode)
			}
		}
		ts.Close()
		drainServer(t, s)
	}
	if verdicts[0] != verdicts[1] {
		t.Fatalf("classify verdicts diverge: fast=%+v legacy=%+v", verdicts[0], verdicts[1])
	}
}

// TestIngestRejectedBatchArenaSteadyState is the arena-hygiene leak test:
// tweets that decode successfully but never reach a pipeline (queue-full
// shed) and malformed lines that fail mid-decode must not accrete arena
// chunks. It drives a stalled server (shard goroutines never started, a
// depth-1 queue pre-filled) through a 10k-line malformed batch and 10k
// decoded-then-shed offers and requires the process-wide chunk counter
// to stay flat — the pooled decoder reclaims every uncommitted byte.
func TestIngestRejectedBatchArenaSteadyState(t *testing.T) {
	opts := testOptions()
	opts.Shards = 1
	opts.QueueDepth = 1
	s := newServer(opts, false) // stalled: the queue never drains
	if _, ok, err := s.offer(job{tweet: makeTweet("1", "u1", "fills the queue", "")}); err != nil || !ok {
		t.Fatalf("priming offer: ok=%v err=%v", ok, err)
	}

	postLines := func(lines string) IngestResponse {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(lines))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		var ir IngestResponse
		if err := jsonDecodeReader(rec.Body, &ir); err != nil {
			t.Fatal(err)
		}
		return ir
	}

	shed := makeTweet("2", "u2", "shed every time", "")
	blob, err := shed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	line := string(blob) + "\n"

	// Warm the decoder pool and the body-buffer pool before measuring.
	postLines(line)
	base := twitterdata.ReadDecodeStats().ArenaChunks

	// One 10k-line batch of malformed documents through one pooled
	// decoder: every line fails inside DecodeInto and auto-rewinds its
	// partial interning, so the request's single arena stays flat. This
	// assertion holds under -race too — no pool churn happens mid-request.
	malformed := strings.Repeat("{\"id_str\": broken}\n", 10_000)
	if ir := postLines(malformed); ir.Malformed != 10_000 {
		t.Fatalf("malformed batch: %+v, want 10000 malformed", ir)
	}
	if got := twitterdata.ReadDecodeStats().ArenaChunks; got-base > 2 {
		t.Fatalf("arena grew by %d chunks across a malformed batch (rewind leaked)", got-base)
	}

	// 10k decoded-then-shed offers: each line parses cleanly, hits the
	// full queue, and must be Discarded before the decoder returns to the
	// pool. The chunk assertion needs the pool to actually reuse decoders,
	// which the race runtime deliberately subverts (it drops Pool items to
	// shake out lifecycle races), so it only runs in non-race builds.
	base = twitterdata.ReadDecodeStats().ArenaChunks
	for i := 0; i < 10_000; i++ {
		if ir := postLines(line); ir.Rejected != 1 {
			t.Fatalf("offer %d: %+v, want 1 rejected", i, ir)
		}
	}
	if got := twitterdata.ReadDecodeStats().ArenaChunks; !raceEnabled && got-base > 2 {
		t.Fatalf("arena grew by %d chunks across rejected traffic (pool not steady-state)", got-base)
	}
}

// TestWALStoresRawNDJSONRecords checks the zero-re-marshal contract:
// tweets accepted over HTTP land in the log as their verbatim NDJSON
// wire bytes (first payload byte '{'), not the binary codec.
func TestWALStoresRawNDJSONRecords(t *testing.T) {
	opts, l := walOptions(t, t.TempDir(), 1, ingestlog.Options{Fsync: ingestlog.FsyncOff})
	defer l.Close()
	s := NewServer(opts)
	ts := httptest.NewServer(s)
	tweets := walTweets(8)
	postNDJSON(t, ts.URL, tweets)
	ts.Close()
	if err := drainServer(t, s); err != nil {
		t.Fatal(err)
	}

	r, err := l.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var n int
	for {
		payload, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) == 0 || payload[0] != '{' {
			t.Fatalf("record %d: payload starts with %#x, want raw NDJSON '{'", n, payload[0])
		}
		want, err := tweets[n].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("record %d: payload differs from wire bytes", n)
		}
		n++
	}
	if n != len(tweets) {
		t.Fatalf("log holds %d records, want %d", n, len(tweets))
	}
}

// TestReplayMixedRecordForms proves logs written by older servers (binary
// codec records) and the raw-NDJSON records the fast ingress writes can
// coexist in one partition: replay dispatches per record on the leading
// byte, and a mixed log replays to exactly the state an all-binary log of
// the same tweets produces.
func TestReplayMixedRecordForms(t *testing.T) {
	tweets := walTweets(60)
	build := func(dir string, mixed bool) *Server {
		t.Helper()
		opts, l := walOptions(t, dir, 1, ingestlog.Options{Fsync: ingestlog.FsyncOff})
		t.Cleanup(func() { l.Close() })
		for i := range tweets {
			var payload []byte
			if mixed && i%2 == 0 {
				blob, err := tweets[i].Marshal()
				if err != nil {
					t.Fatal(err)
				}
				payload = blob
			} else {
				payload = ingestlog.AppendTweet(nil, &tweets[i])
			}
			if _, err := l.Append(0, payload); err != nil {
				t.Fatal(err)
			}
		}
		s := newServer(opts, false)
		n, err := s.Replay()
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(tweets)) {
			t.Fatalf("replayed %d records, want %d", n, len(tweets))
		}
		return s
	}

	mixed := build(t.TempDir(), true)
	binary := build(t.TempDir(), false)
	got, want := fingerprint(mixed, 0), fingerprint(binary, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed-log replay diverges from binary-log replay:\nmixed:  %+v\nbinary: %+v", got, want)
	}
	if off := mixed.Pipeline(0).LogOffset(); off != int64(len(tweets))-1 {
		t.Fatalf("applied offset %d after mixed replay, want %d", off, len(tweets)-1)
	}
}

func jsonDecodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return jsonDecodeReader(resp.Body, v)
}

func jsonDecodeReader(r io.Reader, v any) error {
	blob, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return fmt.Errorf("decode %q: %w", blob, err)
	}
	return nil
}
