// Package serve is the real-time serving subsystem: a production-style
// HTTP front end (stdlib net/http only) over the detection pipeline of
// internal/core. The server runs N pipeline shards — one goroutine and one
// core.Pipeline each — and routes every tweet to hash(userID) % N, so the
// per-user state in the pipeline (alert history, session windows) keeps
// shard affinity. Each shard is fed through a bounded queue; when a queue
// is full the server sheds load with HTTP 429 and a Retry-After header
// instead of buffering without bound.
//
// Endpoints:
//
//	POST /v1/classify  one tweet, synchronous prediction
//	POST /v1/ingest    NDJSON batch, asynchronous, returns accept counts
//	GET  /v1/alerts    live alert stream (Server-Sent Events)
//	GET  /v1/stats     per-shard prequential metrics and queue state
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus text-format metrics
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/ingestlog"
	"redhanded/internal/metrics"
	"redhanded/internal/obs"
	"redhanded/internal/twitterdata"
)

// Options configures a Server.
type Options struct {
	// Pipeline configures every shard's detection pipeline.
	Pipeline core.Options
	// Shards is the number of pipeline shards (default 4). Tweets are
	// routed by hash(userID) % Shards, so the count must stay stable
	// across checkpoint/restore cycles for user state to line up.
	Shards int
	// QueueDepth bounds each shard's ingestion queue (default 1024).
	QueueDepth int
	// DrainBatch caps how many queued tweets a shard drains per
	// core.ProcessBatch call (default 32, minimum 1). Batching amortizes
	// the pipeline's lock acquisitions over runs of queued tweets; it
	// never waits for a batch to form — the shard loop blocks for the
	// first job only and takes whatever else is already queued, so an
	// idle server keeps per-tweet latency.
	DrainBatch int
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// AlertBuffer is the per-subscriber alert buffer; slow SSE consumers
	// drop alerts beyond it rather than stalling the pipeline (default 256).
	AlertBuffer int
	// MaxBatchBytes caps one /v1/ingest request body (default 32 MiB).
	MaxBatchBytes int64
	// Registry receives the server's metrics (default metrics.Default()).
	Registry *metrics.Registry
	// Trace configures the per-tweet stage tracing layer (internal/obs).
	// Trace.Shards is overridden with the server's shard count and
	// Trace.Registry defaults to the server registry; when Trace.Enabled is
	// false the tracer is nil and every span operation is a no-op.
	Trace obs.Config
	// Log, when set, turns ingestion into a write-ahead path: every
	// accepted tweet is appended to its shard's log partition before it is
	// enqueued, and Replay restores unapplied records after a crash. The
	// log's partition count must equal Shards (the two route with the same
	// hash); NewServer panics on a mismatch since running with broken
	// affinity would corrupt replay. The server does not close the log.
	Log *ingestlog.Log
	// LegacyJSONDecode routes /v1/classify and /v1/ingest through
	// encoding/json instead of the zero-allocation twitterdata.Decoder.
	// It exists as an A/B escape hatch for benchmarking and for bisecting
	// decoder-suspected issues; the two paths accept the same inputs
	// (fuzz-enforced equivalence), so production configurations leave it
	// false.
	LegacyJSONDecode bool
}

// DefaultServerOptions returns the paper-default pipeline behind 4 shards.
func DefaultServerOptions() Options {
	return Options{Pipeline: core.DefaultOptions()}
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.DrainBatch <= 0 {
		o.DrainBatch = 32
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.AlertBuffer <= 0 {
		o.AlertBuffer = 256
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 32 << 20
	}
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
	return o
}

// job is one queued unit of work. Synchronous classify requests carry a
// reply channel (buffered, so the shard loop never blocks on it). The span
// (nil when tracing is off) is begun at enqueue so its queue stage covers
// the wait for the shard goroutine; ownership transfers with the job.
type job struct {
	tweet twitterdata.Tweet
	reply chan core.Result
	span  *obs.Span
	// offset is the tweet's ingest-log offset when the server runs with a
	// WAL (logged true); the shard loop then applies it via ProcessLogged
	// so the pipeline's applied offset advances with the tweet's effects.
	offset int64
	logged bool
}

// shard is one pipeline partition: a bounded queue drained by a single
// goroutine that owns the (non-thread-safe) core.Pipeline.
type shard struct {
	id         int
	p          *core.Pipeline
	queue      chan job
	drainBatch int
	process    *metrics.Histogram
	drainSize  *metrics.Histogram
	processed  *metrics.Counter

	// WAL state (log-enabled servers only). ingestMu serializes the
	// append-then-enqueue pair so log order equals queue order, and the
	// queue-capacity check under it guarantees the enqueue after a
	// successful append can never block or be shed — a logged tweet is
	// always applied. encBuf is the append-path encode buffer (guarded by
	// ingestMu). lastEnqueued is the highest log offset handed to the
	// queue or replayed (-1 initially); Drain's barrier compares it
	// against the pipeline's applied offset to prove nothing logged was
	// lost between queue and pipeline.
	ingestMu     sync.Mutex
	encBuf       []byte
	lastEnqueued atomic.Int64
}

// run drains the shard queue in micro-batches: block for one job, then
// take whatever else is already queued (up to drainBatch) without
// waiting, and hand the whole slice to core.ProcessBatch, which
// amortizes the pipeline's lock acquisitions across the batch. Replies
// are delivered in queue order after the batch completes; a synchronous
// classify therefore waits at most one batch (bounded by DrainBatch),
// and only when the queue was already backlogged.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	jobs := make([]job, 0, s.drainBatch)
	entries := make([]core.BatchEntry, 0, s.drainBatch)
	results := make([]core.Result, 0, s.drainBatch)
	closed := false
	for !closed {
		j, ok := <-s.queue
		if !ok {
			return
		}
		jobs = append(jobs[:0], j)
	fill:
		for len(jobs) < s.drainBatch {
			select {
			case j, ok := <-s.queue:
				if !ok {
					closed = true // process what we hold, then exit
					break fill
				}
				jobs = append(jobs, j)
			default:
				break fill
			}
		}

		start := time.Now()
		entries = entries[:0]
		for i := range jobs {
			entries = append(entries, core.BatchEntry{
				Tweet:  &jobs[i].tweet,
				Span:   jobs[i].span,
				Offset: jobs[i].offset,
				Logged: jobs[i].logged,
			})
		}
		results = s.p.ProcessBatch(entries, results[:0])
		perTweet := time.Since(start).Seconds() / float64(len(jobs))
		for i := range jobs {
			if jobs[i].reply != nil {
				jobs[i].reply <- results[i]
			}
			jobs[i].span.Finish()
			s.process.Observe(perTweet)
		}
		s.drainSize.Observe(float64(len(jobs)))
		s.processed.Add(int64(len(jobs)))
	}
}

// emitTimer wraps the SSE hub as the shard's alert/verdict sink so the
// time spent publishing lands in the span's emit stage, carved out of the
// enclosing verdict stage. Sinks run synchronously inside the pipeline's
// mutation section, so the triggering tweet's span is the pipeline's
// ActiveSpan — on the batched drain path the shard-level "current job"
// is ambiguous, but the pipeline always knows whose effects are being
// applied. With tracing off the shard subscribes the hub directly and
// this wrapper is not in the path.
type emitTimer struct {
	sh  *shard
	hub *alertHub
}

func (e *emitTimer) HandleAlert(a core.Alert) {
	start := time.Now()
	e.hub.HandleAlert(a)
	e.sh.p.ActiveSpan().AddExclusive(obs.StageEmit, time.Since(start))
}

func (e *emitTimer) HandleSession(v core.SessionVerdict) {
	start := time.Now()
	e.hub.HandleSession(v)
	e.sh.p.ActiveSpan().AddExclusive(obs.StageEmit, time.Since(start))
}

func (e *emitTimer) HandleEscalation(v core.EscalationVerdict) {
	start := time.Now()
	e.hub.HandleEscalation(v)
	e.sh.p.ActiveSpan().AddExclusive(obs.StageEmit, time.Since(start))
}

// Server fronts the sharded pipelines over HTTP. It implements
// http.Handler; pass it to http.Server or httptest directly.
type Server struct {
	opts   Options
	shards []*shard
	hub    *alertHub
	tracer *obs.Tracer // nil when tracing is disabled
	mux    *http.ServeMux
	start  time.Time
	// draining is closed by Drain so long-lived handlers (the SSE alert
	// streams) terminate and graceful HTTP shutdown can complete.
	draining chan struct{}

	// enqueueMu guards producers against Drain closing the queues: Offer
	// holds the read side, Drain the write side.
	enqueueMu sync.RWMutex
	closed    atomic.Bool
	// replaying is set while Replay feeds the pipelines directly from the
	// log; offers are rejected so live traffic cannot interleave with
	// (and be reordered against) the replayed prefix.
	replaying atomic.Bool
	wg        sync.WaitGroup

	accepted  *metrics.Counter
	rejected  *metrics.Counter
	malformed *metrics.Counter
	// latency holds one histogram per terminal classify outcome, so
	// rejected and canceled requests stop polluting the accepted-path
	// series while still being observable.
	latency map[string]*metrics.Histogram
}

// Terminal outcomes of POST /v1/classify, used as the outcome label on the
// request-latency histogram.
const (
	outcomeOK         = "ok"
	outcomeBadRequest = "bad_request"
	outcomeQueueFull  = "queue_full"
	outcomeDraining   = "draining"
	outcomeCanceled   = "canceled"
)

var classifyOutcomes = []string{outcomeOK, outcomeBadRequest, outcomeQueueFull, outcomeDraining, outcomeCanceled}

// NewServer builds the sharded server and starts its shard goroutines.
func NewServer(opts Options) *Server {
	return newServer(opts, true)
}

// newServer optionally skips starting the shard loops (tests use a stalled
// server to exercise backpressure deterministically).
func newServer(opts Options, start bool) *Server {
	opts = opts.withDefaults()
	if opts.Log != nil && opts.Log.Partitions() != opts.Shards {
		// Misaligned routing would replay users into the wrong shard's
		// pipeline; this is a deployment error, not a runtime condition.
		panic(fmt.Sprintf("serve: ingest log has %d partitions, server has %d shards",
			opts.Log.Partitions(), opts.Shards))
	}
	// The configured user cap is a per-server budget: divide it across the
	// shard pipelines (each owns an independent userstate store) so the
	// process-wide record count stays within Pipeline.Users.MaxUsers.
	// (Degenerate budgets below the shard count resolve to one record per
	// shard — the smallest enforceable bound.)
	if opts.Pipeline.Users.MaxUsers > 0 {
		per := opts.Pipeline.Users.MaxUsers / opts.Shards
		if per < 1 {
			per = 1
		}
		opts.Pipeline.Users.MaxUsers = per
	}
	reg := opts.Registry
	s := &Server{
		opts:      opts,
		hub:       newAlertHub(opts.AlertBuffer, reg),
		start:     time.Now(),
		draining:  make(chan struct{}),
		accepted:  reg.Counter("redhanded_ingest_accepted_total", "Tweets accepted into a shard queue.", nil),
		rejected:  reg.Counter("redhanded_ingest_rejected_total", "Tweets rejected with 429 because a shard queue was full.", nil),
		malformed: reg.Counter("redhanded_ingest_malformed_total", "NDJSON lines that failed to decode.", nil),
		latency:   make(map[string]*metrics.Histogram, len(classifyOutcomes)),
	}
	for _, outcome := range classifyOutcomes {
		s.latency[outcome] = reg.Histogram("redhanded_classify_latency_seconds",
			"End-to-end /v1/classify request latency by terminal outcome.",
			nil, metrics.Labels{"outcome": outcome})
	}
	if opts.Trace.Enabled {
		cfg := opts.Trace
		cfg.Shards = opts.Shards
		if cfg.Registry == nil {
			cfg.Registry = reg
		}
		s.tracer = obs.New(cfg)
	}
	for i := 0; i < opts.Shards; i++ {
		labels := metrics.Labels{"shard": fmt.Sprint(i)}
		sh := &shard{
			id:         i,
			p:          core.NewPipeline(opts.Pipeline),
			queue:      make(chan job, opts.QueueDepth),
			drainBatch: opts.DrainBatch,
			process: reg.Histogram("redhanded_shard_process_seconds",
				"Pipeline processing time per tweet.", nil, labels),
			drainSize: reg.Histogram("redhanded_shard_drain_batch",
				"Tweets drained per shard-loop batch.", drainBuckets, labels),
			processed: reg.Counter("redhanded_shard_processed_total",
				"Tweets processed by the shard loop since server start.", labels),
		}
		if s.tracer != nil {
			et := &emitTimer{sh: sh, hub: s.hub}
			sh.p.Alerter().Subscribe(et)
			sh.p.SubscribeVerdicts(et)
		} else {
			sh.p.Alerter().Subscribe(s.hub)
			sh.p.SubscribeVerdicts(s.hub)
		}
		q := sh.queue
		// The closure captures only the channel; a replacement server with
		// the same shard count takes the series over via re-registration.
		reg.GaugeFunc("redhanded_shard_queue_depth", "Live shard queue depth.",
			labels, func() float64 { return float64(len(q)) })
		users := sh.p.Users()
		reg.GaugeFunc("redhanded_userstate_active_users", "Tracked user records per shard.",
			labels, func() float64 { return float64(users.Len()) })
		if p := sh.p; p.SnapshotStats().Enabled {
			reg.GaugeFunc("redhanded_snapshot_rebuilds", "Compiled-snapshot publications per shard.",
				labels, func() float64 { return float64(p.SnapshotStats().Rebuilds) })
			reg.GaugeFunc("redhanded_snapshot_trees_rebuilt", "Member trees re-flattened across snapshot rebuilds per shard.",
				labels, func() float64 { return float64(p.SnapshotStats().TreesRebuilt) })
			reg.GaugeFunc("redhanded_snapshot_age", "Model mutations the shard's published snapshot is behind.",
				labels, func() float64 { return float64(p.SnapshotStats().Age) })
		}
		sh.lastEnqueued.Store(-1)
		if l := opts.Log; l != nil {
			part, p := sh.id, sh.p
			reg.GaugeFunc("redhanded_ingestlog_replay_lag",
				"Records appended to the shard's log partition but not yet applied by its pipeline.",
				labels, func() float64 { return float64(l.AppendedOffset(part) - p.LogOffset()) })
		}
		if ext := sh.p.Extractor(); ext.CacheStats().Capacity > 0 {
			reg.GaugeFunc("redhanded_featcache_hits", "Extraction-cache hits per shard.",
				labels, func() float64 { return float64(ext.CacheStats().Hits) })
			reg.GaugeFunc("redhanded_featcache_misses", "Extraction-cache misses per shard.",
				labels, func() float64 { return float64(ext.CacheStats().Misses) })
			reg.GaugeFunc("redhanded_featcache_evictions", "Extraction-cache CLOCK evictions per shard.",
				labels, func() float64 { return float64(ext.CacheStats().Evictions) })
			reg.GaugeFunc("redhanded_featcache_entries", "Live extraction-cache entries per shard.",
				labels, func() float64 { return float64(ext.CacheStats().Entries) })
		}
		s.shards = append(s.shards, sh)
	}
	// Ingress decoder telemetry is package-wide (the decoder pool is shared
	// by every server in the process), registered without a shard label.
	reg.GaugeFunc("redhanded_ingress_decodes_total", "Successful fast NDJSON tweet decodes.",
		nil, func() float64 { return float64(twitterdata.ReadDecodeStats().Decodes) })
	reg.GaugeFunc("redhanded_ingress_decode_errors_total", "Failed fast NDJSON tweet decodes.",
		nil, func() float64 { return float64(twitterdata.ReadDecodeStats().Errors) })
	reg.GaugeFunc("redhanded_ingress_arena_chunks", "Decoder arena chunks allocated since process start.",
		nil, func() float64 { return float64(twitterdata.ReadDecodeStats().ArenaChunks) })
	reg.GaugeFunc("redhanded_ingress_interned_bytes", "String bytes interned into decoder arenas.",
		nil, func() float64 { return float64(twitterdata.ReadDecodeStats().InternedBytes) })
	s.mux = s.routes()
	if start {
		for _, sh := range s.shards {
			s.wg.Add(1)
			go sh.run(&s.wg)
		}
	}
	return s
}

// drainBuckets are the shard drain-batch-size histogram buckets: batch
// sizes are small integers bounded by DrainBatch, not latencies.
var drainBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// ShardFor returns the shard index a user's tweets are routed to. The
// mapping is a pure function of (userID, shards), so it is stable across
// restarts and identical on every node running the same shard count.
func ShardFor(userID string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(userID))
	return int(h.Sum32() % uint32(shards))
}

func (s *Server) shardOf(tw *twitterdata.Tweet) *shard {
	key := tw.User.IDStr
	if key == "" {
		key = tw.IDStr
	}
	return s.shards[ShardFor(key, len(s.shards))]
}

// errServerClosed distinguishes drain-time rejection from backpressure.
var errServerClosed = fmt.Errorf("serve: server is draining")

// offer enqueues a job on the tweet's shard without blocking, returning
// the shard it routed to. A false return with a nil error means the queue
// is full (backpressure). Tracing starts here: the span's queue stage
// opens at enqueue, and spans for tweets the server sheds are aborted
// unrecorded (a 429 never reached the pipeline, so it has no stage
// breakdown to report).
func (s *Server) offer(j job) (sh *shard, ok bool, err error) {
	return s.offerRaw(j, nil)
}

// offerRaw is offer with the tweet's NDJSON wire bytes attached: WAL-backed
// servers append raw verbatim to the shard's log partition instead of
// re-encoding the tweet (the zero-re-marshal ingress path). Append copies
// the bytes into the segment synchronously, so the caller may reuse the
// buffer as soon as offerRaw returns. A nil raw falls back to the binary
// record codec.
func (s *Server) offerRaw(j job, raw []byte) (sh *shard, ok bool, err error) {
	s.enqueueMu.RLock()
	defer s.enqueueMu.RUnlock()
	if s.closed.Load() {
		return nil, false, errServerClosed
	}
	if s.replaying.Load() {
		return nil, false, errReplaying
	}
	sh = s.shardOf(&j.tweet)
	if s.tracer != nil {
		j.span = s.tracer.Begin(sh.id)
		j.span.SetID(j.tweet.IDStr)
	}
	if s.opts.Log != nil {
		return s.offerLogged(sh, j, raw)
	}
	select {
	case sh.queue <- j:
		return sh, true, nil
	default:
		s.tracer.Abort(j.span)
		return sh, false, nil
	}
}

// Tracer exposes the server's tracing layer (nil when disabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Pipeline exposes shard i's pipeline (read-only introspection; the shard
// goroutine owns mutation).
func (s *Server) Pipeline(i int) *core.Pipeline { return s.shards[i].p }

// QueueDepths returns the live depth of every shard queue.
func (s *Server) QueueDepths() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = len(sh.queue)
	}
	return out
}

// Drain stops accepting work, closes the shard queues, and waits (up to
// ctx) for the shards to finish what is already queued. After Drain the
// ingestion endpoints answer 503; read-only endpoints keep working so the
// final state remains observable during shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.enqueueMu.Lock()
	if !s.closed.Swap(true) {
		close(s.draining)
		for _, sh := range s.shards {
			close(sh.queue)
		}
	}
	s.enqueueMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Log-offset-aware barrier: the shard loops have exited, so every
		// offset handed to a queue must now be applied. A shortfall means a
		// logged tweet was lost between queue and pipeline — checkpointing
		// that state would silently skip it on replay, so fail loudly
		// instead. (Without a WAL both sides stay -1 and the check is
		// vacuous; queue drainage is all the old barrier could prove.)
		for _, sh := range s.shards {
			if want := sh.lastEnqueued.Load(); sh.p.LogOffset() < want {
				return fmt.Errorf("serve: drain: shard %d applied log offset %d, but offset %d was enqueued",
					sh.id, sh.p.LogOffset(), want)
			}
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// UnregisterMetrics removes the per-shard series this server registered
// (queue depth, processing histogram, processed counter) from its
// registry. Call it when discarding a drained server that is not replaced
// by one with the same shard count — re-registration takes matching
// series over, but a smaller replacement would otherwise leave the extra
// shards' series reporting a dead server forever.
func (s *Server) UnregisterMetrics() {
	for _, sh := range s.shards {
		labels := metrics.Labels{"shard": fmt.Sprint(sh.id)}
		s.opts.Registry.Unregister("redhanded_shard_queue_depth", labels)
		s.opts.Registry.Unregister("redhanded_shard_process_seconds", labels)
		s.opts.Registry.Unregister("redhanded_shard_drain_batch", labels)
		s.opts.Registry.Unregister("redhanded_shard_processed_total", labels)
		s.opts.Registry.Unregister("redhanded_userstate_active_users", labels)
		if sh.p.SnapshotStats().Enabled {
			s.opts.Registry.Unregister("redhanded_snapshot_rebuilds", labels)
			s.opts.Registry.Unregister("redhanded_snapshot_trees_rebuilt", labels)
			s.opts.Registry.Unregister("redhanded_snapshot_age", labels)
		}
		if s.opts.Log != nil {
			s.opts.Registry.Unregister("redhanded_ingestlog_replay_lag", labels)
		}
		if sh.p.Extractor().CacheStats().Capacity > 0 {
			s.opts.Registry.Unregister("redhanded_featcache_hits", labels)
			s.opts.Registry.Unregister("redhanded_featcache_misses", labels)
			s.opts.Registry.Unregister("redhanded_featcache_evictions", labels)
			s.opts.Registry.Unregister("redhanded_featcache_entries", labels)
		}
	}
	s.opts.Registry.Unregister("redhanded_ingress_decodes_total", nil)
	s.opts.Registry.Unregister("redhanded_ingress_decode_errors_total", nil)
	s.opts.Registry.Unregister("redhanded_ingress_arena_chunks", nil)
	s.opts.Registry.Unregister("redhanded_ingress_interned_bytes", nil)
}

// Uptime returns time since the server was built.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}
