package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"redhanded/internal/ingestlog"
	"redhanded/internal/metrics"
	"redhanded/internal/twitterdata"
)

// drainServer drains s with a generous timeout and returns the barrier's
// verdict.
func drainServer(t *testing.T, s *Server) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// walOptions returns server options with a fresh WAL opened over dir.
func walOptions(t *testing.T, dir string, shards int, logOpts ingestlog.Options) (Options, *ingestlog.Log) {
	t.Helper()
	logOpts.Dir = dir
	logOpts.Partitions = shards
	l, err := ingestlog.Open(logOpts)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Shards = shards
	opts.Log = l
	return opts, l
}

// walTweets builds a deterministic mixed stream: labeled tweets from the
// generator's three classes, with every fifth unlabeled.
func walTweets(n int) []twitterdata.Tweet {
	g := twitterdata.NewGenerator(42, 10)
	out := make([]twitterdata.Tweet, n)
	for i := range out {
		out[i] = g.Tweet(i%3, i%10)
		if i%5 == 0 {
			out[i].Label = ""
		}
	}
	return out
}

func postNDJSON(t *testing.T, url string, tweets []twitterdata.Tweet) {
	t.Helper()
	var body bytes.Buffer
	for i := range tweets {
		blob, err := tweets[i].Marshal()
		if err != nil {
			t.Error(err)
			return
		}
		body.Write(blob)
		body.WriteByte('\n')
	}
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Error(err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("ingest: status %d", resp.StatusCode)
	}
}

// pipelineFingerprint captures every piece of replayable shard state the
// checkpoint/replay cycle must reproduce exactly. (The raw checkpoint
// bytes are not comparable — the blob codecs serialize maps in iteration
// order — so equality is asserted semantically, field by field.)
type pipelineFingerprint struct {
	Processed   int64
	LogOffset   int64
	Report      string
	PredDist    []float64
	SessionV    int64
	Escalations int64
	ActiveUsers int
}

func fingerprint(s *Server, shard int) pipelineFingerprint {
	p := s.Pipeline(shard)
	return pipelineFingerprint{
		Processed:   p.Processed(),
		LogOffset:   p.LogOffset(),
		Report:      fmt.Sprintf("%+v", p.Summary()),
		PredDist:    p.PredictedDistribution(),
		SessionV:    p.Users().SessionVerdicts(),
		Escalations: p.Users().Escalations(),
		ActiveUsers: p.Users().Len(),
	}
}

// TestReplayExactlyOnceUnderConcurrentIngest is the exactly-once battery:
// tweets are ingested from concurrent clients into a WAL-backed server, a
// checkpoint is taken mid-stream while ingestion continues, and the
// server is then abandoned without a final checkpoint (the SIGKILL
// scenario — its post-checkpoint state exists only in the log). A fresh
// server restores the mid-stream checkpoint and replays the log; its
// final state must match the uninterrupted run exactly: per-shard
// processed counts and applied offsets, the evaluation matrix, predicted
// distributions, per-user offense counts and escalation verdicts, and the
// model itself (probed functionally, prediction by prediction).
func TestReplayExactlyOnceUnderConcurrentIngest(t *testing.T) {
	const shards, n, clients = 2, 600, 4
	logDir, ckptDir := t.TempDir(), t.TempDir()
	tweets := walTweets(n)

	optsA, logA := walOptions(t, logDir, shards, ingestlog.Options{
		SegmentBytes: 16 << 10, // force several segments per partition
		Fsync:        ingestlog.FsyncOff,
	})
	a := NewServer(optsA)
	ts := httptest.NewServer(a)

	// Concurrent ingest: disjoint slices from several clients, batches
	// small enough to interleave.
	var wg sync.WaitGroup
	per := n / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(chunk []twitterdata.Tweet) {
			defer wg.Done()
			for len(chunk) > 0 {
				b := chunk
				if len(b) > 25 {
					b = b[:25]
				}
				postNDJSON(t, ts.URL, b)
				chunk = chunk[len(b):]
			}
		}(tweets[c*per : (c+1)*per])
	}

	// Mid-stream checkpoint: wait for some progress, then cut while the
	// clients are still posting. Each shard's cut lands at whatever offset
	// it happens to have applied — replay must absorb the difference.
	waitProcessed(t, a, n/4)
	if err := a.Checkpoint(ckptDir); err != nil {
		t.Fatalf("mid-stream checkpoint: %v", err)
	}
	wg.Wait()
	waitProcessed(t, a, int64(n))

	// The uninterrupted run's final state, then SIGKILL-style abandon: no
	// drain barrier failure expected, but crucially NO final checkpoint —
	// everything after the mid-stream cut must come back from the log.
	ts.Close()
	if err := drainServer(t, a); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wantTotal := int64(0)
	wantFP := make([]pipelineFingerprint, shards)
	for i := 0; i < shards; i++ {
		wantFP[i] = fingerprint(a, i)
		wantTotal += wantFP[i].Processed
	}
	if wantTotal != n {
		t.Fatalf("uninterrupted run processed %d tweets, want %d", wantTotal, n)
	}
	if err := logA.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: fresh server, restore the mid-stream cut, replay the rest.
	optsB, logB := walOptions(t, logDir, shards, ingestlog.Options{Fsync: ingestlog.FsyncOff})
	optsB.Registry = metrics.NewRegistry()
	b := NewServer(optsB)
	defer logB.Close()
	if err := b.Restore(ckptDir); err != nil {
		t.Fatalf("restore: %v", err)
	}
	restoredTotal := int64(0)
	for i := 0; i < shards; i++ {
		restoredTotal += b.Pipeline(i).Processed()
	}
	if restoredTotal >= int64(n) {
		t.Fatalf("mid-stream checkpoint already held all %d tweets; nothing would be replayed", n)
	}
	replayed, err := b.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if want := int64(n) - restoredTotal; replayed != want {
		t.Fatalf("replayed %d records, want %d (checkpoint held %d of %d)", replayed, want, restoredTotal, n)
	}

	for i := 0; i < shards; i++ {
		if got := fingerprint(b, i); !reflect.DeepEqual(got, wantFP[i]) {
			t.Errorf("shard %d diverged after replay:\n got %+v\nwant %+v", i, got, wantFP[i])
		}
	}

	// Per-user state, user by user: offense counts, suspension flags,
	// session/escalation verdict totals, windows, scores.
	for i := range tweets {
		id := tweets[i].User.IDStr
		sh := ShardFor(id, shards)
		sa, oka := a.Pipeline(sh).Users().Lookup(id)
		sb, okb := b.Pipeline(sh).Users().Lookup(id)
		if oka != okb {
			t.Fatalf("user %s: present=%v in uninterrupted run, %v after replay", id, oka, okb)
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Errorf("user %s diverged after replay:\n got %+v\nwant %+v", id, sb, sa)
		}
	}

	// Functional model equality: both servers' shard models must score a
	// probe set identically (the extractor, normalizer, and classifier all
	// feed the result, so a mismatch in any of them surfaces here).
	probes := walTweets(50)
	for i := range probes {
		sh := ShardFor(probes[i].User.IDStr, shards)
		pa, pb := a.Pipeline(sh), b.Pipeline(sh)
		ia, ib := pa.ExtractInstance(&probes[i]), pb.ExtractInstance(&probes[i])
		if !reflect.DeepEqual(ia.X, ib.X) {
			t.Fatalf("probe %d: feature vectors diverged", i)
		}
		if va, vb := pa.Model().Predict(ia.X), pb.Model().Predict(ib.X); !reflect.DeepEqual(va, vb) {
			t.Fatalf("probe %d: predictions diverged: %v vs %v", i, va, vb)
		}
	}
}

// TestDrainBarrierDetectsLostLoggedTweet is the regression test for the
// log-offset-aware drain barrier: a server whose shard loops never ran
// has accepted (logged + enqueued) a tweet that will never be applied.
// Draining such a server must fail loudly — checkpointing that state
// would silently drop a durably logged tweet from replay.
func TestDrainBarrierDetectsLostLoggedTweet(t *testing.T) {
	opts, l := walOptions(t, t.TempDir(), 2, ingestlog.Options{Fsync: ingestlog.FsyncOff})
	defer l.Close()
	s := newServer(opts, false) // stalled shards: queued jobs are never drained
	if _, ok, err := s.offer(job{tweet: makeTweet("1", "u-barrier", "hello", "")}); err != nil || !ok {
		t.Fatalf("offer: ok=%v err=%v", ok, err)
	}
	err := drainServer(t, s)
	if err == nil {
		t.Fatal("drain succeeded despite a logged tweet the pipeline never applied")
	}
	want := "applied log offset -1, but offset 0 was enqueued"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("drain error %q does not mention the offset gap %q", err, want)
	}
}

// TestDrainBarrierPassesAfterCleanDrain is the barrier's happy path: with
// running shard loops every logged tweet is applied before Drain returns.
func TestDrainBarrierPassesAfterCleanDrain(t *testing.T) {
	opts, l := walOptions(t, t.TempDir(), 2, ingestlog.Options{Fsync: ingestlog.FsyncOff})
	defer l.Close()
	s := NewServer(opts)
	for i := 0; i < 40; i++ {
		tw := makeTweet(fmt.Sprint(i), fmt.Sprintf("u%d", i%7), "barrier pass", "")
		if _, ok, err := s.offer(job{tweet: tw}); err != nil || !ok {
			t.Fatalf("offer %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := drainServer(t, s); err != nil {
		t.Fatalf("drain: %v", err)
	}
	applied := int64(0)
	for i := 0; i < s.Shards(); i++ {
		applied += s.Pipeline(i).LogOffset() + 1
	}
	if applied != 40 {
		t.Fatalf("applied %d logged offsets, want 40", applied)
	}
}

// TestWALShedsBeforeAppend pins the no-duplicates-on-retry property: a
// tweet shed because the queue is full must not have been appended to the
// log, so the client's retry cannot become a second log record.
func TestWALShedsBeforeAppend(t *testing.T) {
	opts, l := walOptions(t, t.TempDir(), 1, ingestlog.Options{Fsync: ingestlog.FsyncOff})
	defer l.Close()
	opts.QueueDepth = 1
	s := newServer(opts, false) // stalled: the queue never drains
	if _, ok, err := s.offer(job{tweet: makeTweet("1", "u1", "fills the queue", "")}); err != nil || !ok {
		t.Fatalf("first offer: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.offer(job{tweet: makeTweet("2", "u1", "shed", "")}); err != nil || ok {
		t.Fatalf("second offer: ok=%v err=%v, want queue-full shed", ok, err)
	}
	if got := l.AppendedOffset(0); got != 0 {
		t.Fatalf("log holds offsets through %d; the shed tweet was appended", got)
	}
}

// TestWALBackpressureSurfacesAs429 drives the fsync-budget stall through
// the HTTP ingest path: once the unsynced budget is exhausted the server
// answers 429 with Retry-After, the stalled lines are counted rejected,
// and nothing past the stall enters the log (the retry prefix contract).
func TestWALBackpressureSurfacesAs429(t *testing.T) {
	opts, l := walOptions(t, t.TempDir(), 1, ingestlog.Options{
		Fsync:       ingestlog.FsyncInterval,
		FsyncEvery:  time.Hour, // the ticker never fires during the test
		MaxUnsynced: 256,
	})
	defer l.Close()
	opts.QueueDepth = 1024
	s := NewServer(opts)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer drainServer(t, s)

	tweets := walTweets(40)
	var body bytes.Buffer
	for i := range tweets {
		blob, err := tweets[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		body.Write(blob)
		body.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", resp.StatusCode, ir)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if ir.Accepted == 0 || ir.Rejected == 0 || ir.Accepted+ir.Rejected+ir.Malformed != int64(len(tweets)) {
		t.Fatalf("prefix contract broken: %+v over %d lines", ir, len(tweets))
	}
	if got := l.AppendedOffset(0); got != ir.Accepted-1 {
		t.Fatalf("log holds offsets through %d, but %d lines were accepted", got, ir.Accepted)
	}

	// Sync-then-retry rounds drain the remainder: each SyncAll resets the
	// unsynced budget, and each retry resumes at its own accepted prefix —
	// exactly the client protocol the 429 contract prescribes.
	remaining := tweets[ir.Accepted:]
	for round := 0; len(remaining) > 0; round++ {
		if round > 100 {
			t.Fatalf("%d tweets still unaccepted after %d retry rounds", len(remaining), round)
		}
		l.SyncAll()
		var retry bytes.Buffer
		for i := range remaining {
			blob, err := remaining[i].Marshal()
			if err != nil {
				t.Fatal(err)
			}
			retry.Write(blob)
			retry.WriteByte('\n')
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", &retry)
		if err != nil {
			t.Fatal(err)
		}
		var rr IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rr.Malformed != 0 {
			t.Fatalf("retry round %d: %d malformed lines", round, rr.Malformed)
		}
		remaining = remaining[rr.Accepted:]
	}
	if got := l.AppendedOffset(0); got != int64(len(tweets))-1 {
		t.Fatalf("after retries the log holds offsets through %d, want %d", got, len(tweets)-1)
	}
}
