package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/metrics"
	"redhanded/internal/twitterdata"
)

func testOptions() Options {
	opts := core.DefaultOptions()
	opts.SampleStep = 0
	return Options{
		Pipeline: opts,
		Shards:   4,
		Registry: metrics.NewRegistry(),
	}
}

func makeTweet(id, user, text, label string) twitterdata.Tweet {
	return twitterdata.Tweet{
		IDStr:     id,
		Text:      text,
		CreatedAt: "Mon Jun 01 12:00:00 +0000 2020",
		User: twitterdata.User{
			IDStr:      user,
			ScreenName: "u" + user,
			CreatedAt:  "Wed Jan 01 00:00:00 +0000 2014",
		},
		Label: label,
	}
}

func ndjson(t *testing.T, tweets []twitterdata.Tweet) *bytes.Buffer {
	t.Helper()
	var b bytes.Buffer
	for i := range tweets {
		blob, err := tweets[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b.Write(blob)
		b.WriteByte('\n')
	}
	return &b
}

// waitProcessed polls until the server has run n tweets through its shards.
func waitProcessed(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var total int64
		for i := 0; i < s.Shards(); i++ {
			total += s.Pipeline(i).Processed()
		}
		if total >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d tweets to be processed", n)
}

func TestShardForStableAndSpread(t *testing.T) {
	hits := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		user := fmt.Sprintf("user-%d", i)
		sh := ShardFor(user, 8)
		if sh < 0 || sh >= 8 {
			t.Fatalf("ShardFor(%q, 8) = %d out of range", user, sh)
		}
		if again := ShardFor(user, 8); again != sh {
			t.Fatalf("ShardFor not deterministic: %d vs %d", sh, again)
		}
		hits[sh] = true
	}
	if len(hits) != 8 {
		t.Fatalf("1000 users hit only %d of 8 shards", len(hits))
	}
}

func TestShardAffinity(t *testing.T) {
	s := NewServer(testOptions())
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// 40 tweets from 10 users; every user's tweets must land on the one
	// shard ShardFor names, visible as that shard's processed count.
	perShard := make(map[int]int64)
	var tweets []twitterdata.Tweet
	for u := 0; u < 10; u++ {
		user := fmt.Sprintf("%d", 1000+u)
		perShard[ShardFor(user, s.Shards())] += 4
		for k := 0; k < 4; k++ {
			tweets = append(tweets, makeTweet(fmt.Sprintf("t%d-%d", u, k), user, "hello world", ""))
		}
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != int64(len(tweets)) || ir.Rejected != 0 || ir.Malformed != 0 {
		t.Fatalf("ingest = %+v, want all %d accepted", ir, len(tweets))
	}
	waitProcessed(t, s, int64(len(tweets)))
	for i := 0; i < s.Shards(); i++ {
		if got := s.Pipeline(i).Processed(); got != perShard[i] {
			t.Errorf("shard %d processed %d tweets, want %d (affinity broken)", i, got, perShard[i])
		}
	}
}

func TestBackpressure429(t *testing.T) {
	opts := testOptions()
	opts.Shards = 1
	opts.QueueDepth = 2
	opts.RetryAfter = 3 * time.Second
	// Shard loops never start: the queue fills and stays full.
	s := newServer(opts, false)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var tweets []twitterdata.Tweet
	for i := 0; i < 5; i++ {
		tweets = append(tweets, makeTweet(fmt.Sprint(i), "7", "text", ""))
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 2 || ir.Rejected != 3 {
		t.Fatalf("ingest = %+v, want accepted=2 rejected=3", ir)
	}

	// The synchronous path also sheds load instead of queueing unboundedly.
	blob, _ := tweets[0].Marshal()
	resp2, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("classify status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("classify 429 missing Retry-After")
	}
}

func TestClassifySynchronous(t *testing.T) {
	opts := testOptions()
	s := NewServer(opts)
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	tw := makeTweet("1", "42", "you are all wonderful", twitterdata.LabelNormal)
	blob, _ := tw.Marshal()
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var cr ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.TweetID != "1" || !cr.Tested {
		t.Fatalf("classify = %+v, want tweet_id=1 tested=true", cr)
	}
	if cr.Shard != ShardFor("42", s.Shards()) {
		t.Fatalf("classify ran on shard %d, want %d", cr.Shard, ShardFor("42", s.Shards()))
	}
	if cr.Predicted == "" {
		t.Fatal("classify returned empty prediction")
	}

	// Malformed body is a client error, not a 500.
	resp2, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed classify status = %d, want 400", resp2.StatusCode)
	}
}

func TestSSEAlertDelivery(t *testing.T) {
	opts := testOptions()
	opts.Shards = 1
	opts.Pipeline.AlertThreshold = 0.1
	s := NewServer(opts)
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/alerts", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// Teach the model that the stream is hateful, then keep posting: once
	// the majority class flips, predictions turn aggressive and alert.
	var tweets []twitterdata.Tweet
	for i := 0; i < 80; i++ {
		tweets = append(tweets, makeTweet(fmt.Sprint(i), "666", "you are a worthless idiot and i hate you", twitterdata.LabelHateful))
	}
	resp2, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if data == "" {
		t.Fatalf("no alert event received: %v", sc.Err())
	}
	var ev struct {
		UserID     string  `json:"user_id"`
		Label      string  `json:"label"`
		Confidence float64 `json:"confidence"`
	}
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("alert payload %q: %v", data, err)
	}
	if ev.UserID != "666" || ev.Label == "" || ev.Label == "normal" {
		t.Fatalf("alert = %+v, want aggressive label for user 666", ev)
	}

	// Drain must terminate the stream, or graceful HTTP shutdown would
	// wait on it forever.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	} // must reach EOF before the 10s request context expires
	if ctx.Err() != nil {
		t.Fatal("SSE stream did not close on Drain")
	}
}

func TestMetricsExposition(t *testing.T) {
	opts := testOptions()
	opts.Shards = 2
	s := NewServer(opts)
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	tw := makeTweet("1", "9", "hello", "")
	blob, _ := tw.Marshal()
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(resp2.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", resp2.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"# TYPE redhanded_ingest_accepted_total counter",
		"redhanded_ingest_accepted_total 1",
		"# TYPE redhanded_shard_queue_depth gauge",
		`redhanded_shard_queue_depth{shard="0"}`,
		`redhanded_shard_queue_depth{shard="1"}`,
		"# TYPE redhanded_classify_latency_seconds histogram",
		`redhanded_classify_latency_seconds_bucket{outcome="ok",le="+Inf"} 1`,
		`redhanded_classify_latency_seconds_count{outcome="ok"} 1`,
		`redhanded_shard_process_seconds_bucket{shard=`,
		`redhanded_http_requests_total{path="/v1/classify"} 1`,
		// The process-default registry rides along: core/engine wiring.
		"# TYPE redhanded_alerts_raised_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestStatsAndHealthz(t *testing.T) {
	s := NewServer(testOptions())
	ts := httptest.NewServer(s)
	defer ts.Close()

	var tweets []twitterdata.Tweet
	for i := 0; i < 10; i++ {
		tweets = append(tweets, makeTweet(fmt.Sprint(i), fmt.Sprint(i%3), "some text", twitterdata.LabelNormal))
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitProcessed(t, s, 10)

	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.Processed != 10 || st.Accepted != 10 || len(st.PerShard) != 4 {
		t.Fatalf("stats = %+v, want 4 shards with 10 processed", st)
	}
	var labeled int64
	for _, sh := range st.PerShard {
		labeled += sh.Report.Instances
		if sh.QueueCap != 1024 {
			t.Fatalf("shard %d queue_cap = %d, want default 1024", sh.Shard, sh.QueueCap)
		}
	}
	if labeled != 10 {
		t.Fatalf("prequential instances = %d, want 10", labeled)
	}

	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp3.StatusCode)
	}

	// After Drain: ingestion refuses, health reports draining.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp4, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets[:1]))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest = %d, want 503", resp4.StatusCode)
	}
	resp5, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz = %d, want 503", resp5.StatusCode)
	}
}

func TestGracefulShutdownCheckpointRestore(t *testing.T) {
	opts := testOptions()
	opts.Shards = 2
	dir := t.TempDir()

	a := NewServer(opts)
	tsA := httptest.NewServer(a)
	var tweets []twitterdata.Tweet
	labels := []string{twitterdata.LabelNormal, twitterdata.LabelAbusive, twitterdata.LabelHateful}
	for i := 0; i < 60; i++ {
		tweets = append(tweets, makeTweet(fmt.Sprint(i), fmt.Sprint(i%7), "stream me harder", labels[i%3]))
	}
	resp, err := http.Post(tsA.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitProcessed(t, a, 60)
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	tsA.Close()

	// Restore into a fresh server: per-shard learned state must carry over.
	b := newServer(opts, true)
	defer b.Drain(context.Background())
	if err := b.Restore(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got, want := b.Pipeline(i).Processed(), a.Pipeline(i).Processed(); got != want {
			t.Errorf("shard %d restored processed = %d, want %d", i, got, want)
		}
		if got, want := b.Pipeline(i).Summary(), a.Pipeline(i).Summary(); got != want {
			t.Errorf("shard %d restored summary = %+v, want %+v", i, got, want)
		}
		if got, want := b.Pipeline(i).Extractor().BoW().Size(), a.Pipeline(i).Extractor().BoW().Size(); got != want {
			t.Errorf("shard %d restored BoW size = %d, want %d", i, got, want)
		}
	}

	// A different shard count must refuse the checkpoint: the hash routing
	// would send users to shards that never learned from them.
	bad := testOptions()
	bad.Shards = 3
	c := newServer(bad, false)
	if err := c.Restore(dir); err == nil {
		t.Fatal("restore with mismatched shard count should fail")
	}
}

// TestClassifyLatencyOutcomes proves every terminal classify outcome lands
// on the latency histogram under its own outcome label: rejected and
// malformed requests are no longer invisible, and none of them pollute the
// accepted-path ("ok") series.
func TestClassifyLatencyOutcomes(t *testing.T) {
	opts := testOptions()
	opts.Shards = 1
	opts.QueueDepth = 1
	// Shard loops never start: the queue fills and stays full.
	s := newServer(opts, false)
	ts := httptest.NewServer(s)
	defer ts.Close()

	count := func(outcome string) int64 {
		return s.latency[outcome].Count()
	}

	// bad_request: undecodable body.
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := count(outcomeBadRequest); got != 1 {
		t.Errorf("bad_request latency count = %d, want 1", got)
	}

	// queue_full: the first request fills the stalled shard's queue and is
	// later canceled (covering the canceled outcome); the second is shed
	// with 429.
	tw := makeTweet("1", "9", "text", "")
	blob, _ := tw.Marshal()
	ctx, cancel := context.WithCancel(context.Background())
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/classify", bytes.NewReader(blob))
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.shards[0].queue) == 0 {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := count(outcomeQueueFull); got != 1 {
		t.Errorf("queue_full latency count = %d, want 1", got)
	}

	// canceled: the queued request's client goes away; its wait time lands
	// on the canceled series, not the ok one.
	cancel()
	<-firstDone
	deadline = time.Now().Add(2 * time.Second)
	for count(outcomeCanceled) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled outcome never recorded")
		}
		time.Sleep(time.Millisecond)
	}

	// ok must not have been touched by any of the outcomes above.
	if got := count(outcomeOK); got != 0 {
		t.Errorf("ok latency count = %d, want 0", got)
	}
}

// TestClassifyLatencyDraining proves the 503 drain path records latency
// under the draining outcome.
func TestClassifyLatencyDraining(t *testing.T) {
	opts := testOptions()
	opts.Shards = 1
	s := NewServer(opts)
	ts := httptest.NewServer(s)
	defer ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	tw := makeTweet("1", "9", "text", "")
	blob, _ := tw.Marshal()
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := s.latency[outcomeDraining].Count(); got != 1 {
		t.Errorf("draining latency count = %d, want 1", got)
	}
}
