// Package sentiment implements a SentiStrength-style lexicon sentiment
// analyzer. Like the tool the paper uses, it reports two scores per text:
// a positive strength in [1, 5] and a negative strength in [-5, -1]
// (1 / -1 mean "no sentiment"). Scoring follows the SentiStrength recipe:
// each term carries a base strength, preceding booster words strengthen or
// weaken it, preceding negators flip it, and emphasis markers (elongated
// words, exclamation marks, shouting) add intensity.
package sentiment

import (
	"strings"
	"unicode"
)

// Score is the result of analyzing one text.
type Score struct {
	// Positive is the maximum positive strength found, in [1, 5].
	Positive int
	// Negative is the maximum negative strength found, in [-5, -1].
	Negative int
}

// Analyzer scores texts against the built-in lexicon. The zero value is
// ready to use; Analyzer is safe for concurrent use.
type Analyzer struct{}

// New returns a ready Analyzer.
func New() *Analyzer { return &Analyzer{} }

// negators flip the polarity of the following sentiment term.
var negators = map[string]bool{
	"not": true, "no": true, "never": true, "neither": true, "nor": true,
	"cannot": true, "cant": true, "dont": true, "doesnt": true,
	"didnt": true, "wont": true, "wouldnt": true, "shouldnt": true,
	"couldnt": true, "isnt": true, "arent": true, "wasnt": true,
	"werent": true, "aint": true, "without": true, "hardly": true,
	"barely": true, "scarcely": true,
}

// boosters adjust the strength of the following sentiment term.
var boosters = map[string]int{
	"very": 1, "really": 1, "extremely": 2, "incredibly": 2, "absolutely": 2,
	"totally": 1, "completely": 1, "utterly": 2, "so": 1, "too": 1,
	"deeply": 1, "insanely": 2, "super": 1, "freaking": 1, "fucking": 2,
	"damn": 1, "bloody": 1, "seriously": 1, "truly": 1, "especially": 1,
	"slightly": -1, "somewhat": -1, "barely": -1, "kinda": -1, "sorta": -1,
	"abit": -1, "mildly": -1, "fairly": -1,
}

// lexicon maps sentiment-bearing terms to base strengths. Positive values
// are in [2, 5], negative in [-5, -2], matching SentiStrength's term scale.
var lexicon = map[string]int{
	// strongly positive
	"love": 4, "loved": 4, "loves": 4, "adore": 5, "amazing": 4,
	"awesome": 4, "fantastic": 5, "wonderful": 4, "brilliant": 4,
	"excellent": 4, "perfect": 5, "best": 4, "beautiful": 4, "delighted": 4,
	"thrilled": 5, "ecstatic": 5, "superb": 4, "outstanding": 4,
	// positive
	"good": 3, "great": 3, "nice": 3, "happy": 3, "glad": 3, "fun": 3,
	"funny": 3, "cool": 2, "like": 2, "likes": 2, "liked": 2, "enjoy": 3,
	"enjoyed": 3, "pleased": 3, "proud": 3, "thanks": 3, "thank": 3,
	"grateful": 3, "sweet": 3, "kind": 3, "lovely": 3, "cute": 3,
	"win": 2, "won": 2, "winning": 2, "hope": 2, "hopeful": 2, "smile": 3,
	"laughed": 2, "laugh": 2, "excited": 3, "interesting": 2, "helpful": 2,
	"friendly": 3, "safe": 2, "calm": 2, "peaceful": 3, "fine": 2,
	"better": 2, "cheerful": 3, "congrats": 3, "congratulations": 3,
	"welcome": 2, "blessed": 3, "charming": 3, "gorgeous": 4, "yay": 3,
	// mildly negative
	"bad": -3, "sad": -3, "unhappy": -3, "sorry": -2, "annoying": -3,
	"annoyed": -3, "boring": -2, "bored": -2, "tired": -2, "worried": -2,
	"afraid": -3, "scared": -3, "weird": -2, "strange": -2, "wrong": -2,
	"poor": -2, "unfair": -3, "upset": -3, "lost": -2, "lose": -2,
	"losing": -2, "fail": -3, "failed": -3, "failure": -3, "problem": -2,
	"issues": -2, "broken": -2, "hurt": -3, "hurts": -3, "pain": -3,
	"painful": -3, "cry": -3, "crying": -3, "worse": -3, "worst": -4,
	"angry": -3, "mad": -3, "sick": -2, "sucks": -3, "suck": -3,
	"lame": -2, "mess": -2, "ruined": -3, "shame": -3, "ashamed": -3,
	"jealous": -2, "bitter": -2, "lonely": -3, "miserable": -4,
	// strongly negative / abusive vocabulary
	"hate": -4, "hates": -4, "hated": -4, "hateful": -4, "despise": -5,
	"loathe": -5, "disgusting": -4, "disgust": -4, "gross": -3,
	"horrible": -4, "terrible": -4, "awful": -4, "dreadful": -4,
	"pathetic": -4, "worthless": -4, "useless": -4, "stupid": -4,
	"idiot": -4, "idiots": -4, "idiotic": -4, "moron": -4, "morons": -4,
	"dumb": -3, "dumbass": -4, "fool": -3, "foolish": -3, "loser": -4,
	"losers": -4, "ugly": -3, "nasty": -4, "vile": -5, "evil": -4,
	"cruel": -4, "toxic": -4, "trash": -4, "garbage": -4, "filth": -4,
	"filthy": -4, "scum": -5, "scumbag": -5, "creep": -3, "creepy": -3,
	"disgrace": -4, "disgraceful": -4, "insult": -3, "insulting": -3,
	"offensive": -3, "abuse": -4, "abusive": -4, "bully": -4, "threat": -3,
	"threaten": -4, "kill": -4, "killed": -4, "die": -4, "dead": -3,
	"death": -3, "destroy": -3, "destroyed": -3, "attack": -3, "violent": -4,
	"violence": -4, "racist": -4, "sexist": -4, "bigot": -4, "bitch": -4,
	"bastard": -4, "damn": -3, "damnit": -3, "hell": -3, "crap": -3,
	"shit": -4, "shitty": -4, "bullshit": -4, "fuck": -4, "fucked": -4,
	"fucking": -4, "fucker": -5, "asshole": -5, "ass": -3, "dick": -4,
	"dickhead": -5, "prick": -4, "cunt": -5, "whore": -5, "slut": -5,
	"wanker": -4, "twat": -4, "retard": -5, "retarded": -5, "faggot": -5,
	"nigger": -5, "nigga": -4, "freak": -3, "psycho": -4, "maniac": -3,
	"liar": -3, "lies": -2, "lying": -3, "cheat": -3, "cheater": -3,
	"corrupt": -3, "fraud": -3, "disaster": -3, "tragic": -3, "tragedy": -3,
	"terrorist": -4, "murder": -4, "murderer": -5, "rape": -5, "rapist": -5,
}

// emoticons carry their own strengths, like SentiStrength's emoticon
// list. They are matched as whole whitespace-delimited tokens before
// normalization strips their punctuation.
var emoticons = map[string]int{
	":)": 3, ":-)": 3, ":D": 4, ":-D": 4, "=)": 3, ":]": 3, "^_^": 3,
	";)": 2, ";-)": 2, "<3": 4, ":*": 3, ":p": 2, ":P": 2, "xD": 4,
	":(": -3, ":-(": -3, ":'(": -4, ";(": -3, "=(": -3, ":[": -3,
	":/": -2, ":-/": -2, ":|": -2, "-_-": -2, "D:": -4, "</3": -4,
	">:(": -4, "T_T": -4,
}

// Analyze scores one text. Texts with no sentiment terms score {1, -1}.
func (a *Analyzer) Analyze(text string) Score {
	maxPos, maxNeg := 1, -1
	exclaims := strings.Count(text, "!")

	tokens := strings.Fields(text)
	boost := 0
	negate := false
	for _, raw := range tokens {
		if v, ok := emoticons[raw]; ok {
			if v > maxPos {
				maxPos = v
			}
			if v < maxNeg {
				maxNeg = v
			}
			boost, negate = 0, false
			continue
		}
		shout := isShout(raw)
		w := normalizeToken(raw)
		if w == "" {
			continue
		}
		elongated := hasElongation(raw)
		if negators[w] {
			negate = true
			continue
		}
		if b, ok := boosters[w]; ok {
			boost += b
			continue
		}
		strength, ok := lexicon[w]
		if !ok {
			// Try de-elongated form ("coooool" -> "cool").
			if elongated {
				strength, ok = lexicon[squeeze(w)]
			}
			if !ok {
				boost, negate = 0, false
				continue
			}
		}
		// Apply modifiers: boosters add magnitude, emphasis adds magnitude,
		// negation flips and dampens (SentiStrength flips the polarity and
		// reduces the strength by one).
		mag := abs(strength) + boost
		if elongated {
			mag++
		}
		if shout {
			mag++
		}
		mag = clamp(mag, 1, 5)
		sign := sign(strength)
		if negate {
			sign = -sign
			mag = clamp(mag-1, 1, 5)
		}
		v := sign * mag
		if v > 0 && v > maxPos {
			maxPos = v
		}
		if v < 0 && v < maxNeg {
			maxNeg = v
		}
		boost, negate = 0, false
	}

	// Exclamation marks intensify the dominant polarity.
	if exclaims > 0 {
		bump := 1
		if exclaims >= 3 {
			bump = 2
		}
		if -maxNeg >= maxPos && maxNeg < -1 {
			maxNeg = clamp(maxNeg-bump, -5, -1)
		} else if maxPos > 1 {
			maxPos = clamp(maxPos+bump, 1, 5)
		}
	}
	return Score{Positive: maxPos, Negative: maxNeg}
}

// HasTerm reports whether the lower-cased word is in the sentiment lexicon.
func HasTerm(w string) bool {
	_, ok := lexicon[strings.ToLower(w)]
	return ok
}

// TermStrength returns the base strength of a lexicon term (0 if absent).
func TermStrength(w string) int { return lexicon[strings.ToLower(w)] }

// PositiveTerms returns all lexicon terms with positive strength.
func PositiveTerms() []string { return termsBy(func(v int) bool { return v > 0 }) }

// NegativeTerms returns all lexicon terms with negative strength.
func NegativeTerms() []string { return termsBy(func(v int) bool { return v < 0 }) }

func termsBy(keep func(int) bool) []string {
	var out []string
	for w, v := range lexicon {
		if keep(v) {
			out = append(out, w)
		}
	}
	return out
}

func normalizeToken(tok string) string {
	t := strings.TrimFunc(tok, func(r rune) bool { return !unicode.IsLetter(r) })
	t = strings.ToLower(t)
	return strings.ReplaceAll(t, "'", "")
}

func isShout(tok string) bool {
	letters, uppers := 0, 0
	for _, r := range tok {
		if unicode.IsLetter(r) {
			letters++
			if unicode.IsUpper(r) {
				uppers++
			}
		}
	}
	return letters >= 2 && uppers == letters
}

func hasElongation(tok string) bool {
	run, prev := 0, rune(-1)
	for _, r := range tok {
		if r == prev {
			run++
			if run >= 3 {
				return true
			}
		} else {
			prev, run = r, 1
		}
	}
	return false
}

// squeeze collapses letter runs longer than two ("sooooo" -> "soo" -> try
// both the squeezed and fully collapsed form).
func squeeze(w string) string {
	var b strings.Builder
	var prev rune = -1
	for _, r := range w {
		if r != prev {
			b.WriteRune(r)
		}
		prev = r
	}
	return b.String()
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
