package sentiment

import "testing"

func analyze(t *testing.T, s string) Score {
	t.Helper()
	return New().Analyze(s)
}

func TestNeutralText(t *testing.T) {
	got := analyze(t, "the meeting is at noon tomorrow")
	if got.Positive != 1 || got.Negative != -1 {
		t.Fatalf("neutral text scored %+v, want {1,-1}", got)
	}
}

func TestEmptyText(t *testing.T) {
	got := analyze(t, "")
	if got.Positive != 1 || got.Negative != -1 {
		t.Fatalf("empty text scored %+v, want {1,-1}", got)
	}
}

func TestPositiveDetection(t *testing.T) {
	got := analyze(t, "what a wonderful day")
	if got.Positive < 3 {
		t.Fatalf("positive text scored %+v", got)
	}
	if got.Negative != -1 {
		t.Fatalf("positive text has negative score %+v", got)
	}
}

func TestNegativeDetection(t *testing.T) {
	got := analyze(t, "you are a pathetic worthless idiot")
	if got.Negative > -4 {
		t.Fatalf("abusive text scored %+v, want Negative <= -4", got)
	}
}

func TestBoosterStrengthens(t *testing.T) {
	plain := analyze(t, "this is bad")
	boosted := analyze(t, "this is really bad")
	if boosted.Negative >= plain.Negative {
		t.Fatalf("booster did not strengthen: plain %+v boosted %+v", plain, boosted)
	}
}

func TestDiminisherWeakens(t *testing.T) {
	plain := analyze(t, "this is awful")
	dimmed := analyze(t, "this is slightly awful")
	if dimmed.Negative <= plain.Negative {
		t.Fatalf("diminisher did not weaken: plain %+v dimmed %+v", plain, dimmed)
	}
}

func TestNegationFlips(t *testing.T) {
	got := analyze(t, "this is not good")
	if got.Positive > 1 {
		t.Fatalf("negated positive still positive: %+v", got)
	}
	if got.Negative >= -1 {
		t.Fatalf("negated positive should turn negative: %+v", got)
	}
}

func TestExclamationIntensifies(t *testing.T) {
	plain := analyze(t, "i hate this")
	excl := analyze(t, "i hate this!!!")
	if excl.Negative >= plain.Negative {
		t.Fatalf("exclamations did not intensify: %+v vs %+v", plain, excl)
	}
}

func TestShoutingIntensifies(t *testing.T) {
	plain := analyze(t, "i hate this")
	shout := analyze(t, "i HATE this")
	if shout.Negative >= plain.Negative {
		t.Fatalf("shouting did not intensify: %+v vs %+v", plain, shout)
	}
}

func TestElongationIntensifies(t *testing.T) {
	plain := analyze(t, "this is bad")
	elong := analyze(t, "this is baaaaad")
	if elong.Negative >= plain.Negative {
		t.Fatalf("elongation did not intensify: %+v vs %+v", plain, elong)
	}
}

func TestScoreBounds(t *testing.T) {
	extreme := analyze(t, "FUCKING WORTHLESS SCUM!!! absolutely DESPISE you, utterly VILE rapist murderer")
	if extreme.Negative < -5 || extreme.Negative > -1 {
		t.Fatalf("negative out of bounds: %+v", extreme)
	}
	joy := analyze(t, "absolutely PERFECT, utterly FANTASTIC, incredibly amazing!!!")
	if joy.Positive > 5 || joy.Positive < 1 {
		t.Fatalf("positive out of bounds: %+v", joy)
	}
}

func TestMixedSentiment(t *testing.T) {
	got := analyze(t, "i love the show but the host is an idiot")
	if got.Positive < 3 || got.Negative > -3 {
		t.Fatalf("mixed text should carry both polarities: %+v", got)
	}
}

func TestEmoticons(t *testing.T) {
	pos := analyze(t, "great game :)")
	if pos.Positive < 3 {
		t.Fatalf("positive emoticon not scored: %+v", pos)
	}
	neg := analyze(t, "missed the train :(")
	if neg.Negative > -3 {
		t.Fatalf("negative emoticon not scored: %+v", neg)
	}
	heart := analyze(t, "this <3")
	if heart.Positive < 4 {
		t.Fatalf("heart emoticon not scored: %+v", heart)
	}
	broken := analyze(t, "everything </3 today")
	if broken.Negative > -4 {
		t.Fatalf("broken heart not scored: %+v", broken)
	}
	// Emoticons only match as standalone tokens.
	embedded := analyze(t, "see http://x.co/:(abc")
	if embedded.Negative < -1 {
		t.Fatalf("embedded emoticon should not score: %+v", embedded)
	}
}

func TestLexicalHelpers(t *testing.T) {
	if !HasTerm("hate") || HasTerm("xyzzy") {
		t.Fatalf("HasTerm misbehaves")
	}
	if TermStrength("hate") >= 0 {
		t.Fatalf("TermStrength(hate) = %d, want negative", TermStrength("hate"))
	}
	if len(PositiveTerms()) == 0 || len(NegativeTerms()) == 0 {
		t.Fatalf("term exports empty")
	}
	for _, w := range PositiveTerms() {
		if TermStrength(w) <= 0 {
			t.Fatalf("positive term %q has strength %d", w, TermStrength(w))
		}
	}
}
