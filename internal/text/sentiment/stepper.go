package sentiment

import "unicode/utf8"

// Stepper is the allocation-free fast path of the analyzer: instead of
// re-tokenizing a text, the caller feeds it one token at a time and the
// stepper carries the booster/negator state between tokens. It mirrors
// Analyze exactly — the feature package's golden and fuzz tests pin the two
// paths together.
//
// The caller contract matches what Analyze derives itself from each
// whitespace field of a cleaned text:
//
//	raw   — the token exactly as it appears in the text (case preserved),
//	        used for the emoticon lookup
//	word  — normalizeToken(raw): lowercased with apostrophes removed
//	shout — isShout(raw): at least two letters, all uppercase
//	long  — hasElongation(raw): a rune repeated three or more times
//
// A Stepper is not safe for concurrent use; it holds a reusable
// de-elongation buffer. Reset it before each text.
type Stepper struct {
	maxPos, maxNeg int
	boost          int
	negate         bool
	sq             []byte // squeeze scratch for de-elongated lookups
}

// Reset prepares the stepper for a new text.
func (st *Stepper) Reset() {
	st.maxPos, st.maxNeg = 1, -1
	st.boost, st.negate = 0, false
}

// Token folds one token into the running score.
func (st *Stepper) Token(raw, word []byte, shout, long bool) {
	if v, ok := emoticons[string(raw)]; ok {
		if v > st.maxPos {
			st.maxPos = v
		}
		if v < st.maxNeg {
			st.maxNeg = v
		}
		st.boost, st.negate = 0, false
		return
	}
	if len(word) == 0 {
		return // Analyze skips empty words without touching state
	}
	if negators[string(word)] {
		st.negate = true
		return
	}
	if b, ok := boosters[string(word)]; ok {
		st.boost += b
		return
	}
	strength, ok := lexicon[string(word)]
	if !ok {
		if long {
			st.sq = squeezeBytes(st.sq[:0], word)
			strength, ok = lexicon[string(st.sq)]
		}
		if !ok {
			st.boost, st.negate = 0, false
			return
		}
	}
	mag := abs(strength) + st.boost
	if long {
		mag++
	}
	if shout {
		mag++
	}
	mag = clamp(mag, 1, 5)
	sg := sign(strength)
	if st.negate {
		sg = -sg
		mag = clamp(mag-1, 1, 5)
	}
	v := sg * mag
	if v > 0 && v > st.maxPos {
		st.maxPos = v
	}
	if v < 0 && v < st.maxNeg {
		st.maxNeg = v
	}
	st.boost, st.negate = 0, false
}

// Finish applies the exclamation-mark emphasis (the count of '!' in the
// text) and returns the score. A preprocessed text has no '!' left, so the
// extractor's fast path passes 0.
func (st *Stepper) Finish(exclaims int) Score {
	maxPos, maxNeg := st.maxPos, st.maxNeg
	if exclaims > 0 {
		bump := 1
		if exclaims >= 3 {
			bump = 2
		}
		if -maxNeg >= maxPos && maxNeg < -1 {
			maxNeg = clamp(maxNeg-bump, -5, -1)
		} else if maxPos > 1 {
			maxPos = clamp(maxPos+bump, 1, 5)
		}
	}
	return Score{Positive: maxPos, Negative: maxNeg}
}

// squeezeBytes is squeeze over bytes, appending into dst.
func squeezeBytes(dst, w []byte) []byte {
	var prev rune = -1
	for i := 0; i < len(w); {
		r, sz := utf8.DecodeRune(w[i:])
		if r != prev {
			dst = append(dst, w[i:i+sz]...)
		}
		prev = r
		i += sz
	}
	return dst
}
