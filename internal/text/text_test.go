package text

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestCleanRemovesTweetContent(t *testing.T) {
	in := "RT @user1: Check this out http://t.co/abc #winning 100%!!!"
	got := Clean(in, DefaultCleanOptions())
	for _, banned := range []string{"@", "#", "http", "RT", "100", "%", "!"} {
		if strings.Contains(got, banned) {
			t.Errorf("Clean left %q in %q", banned, got)
		}
	}
	if !strings.Contains(got, "Check this out") {
		t.Errorf("Clean dropped real content: %q", got)
	}
}

func TestCleanKeepsCase(t *testing.T) {
	got := Clean("STOP that NOW", DefaultCleanOptions())
	if got != "STOP that NOW" {
		t.Fatalf("Clean altered case: %q", got)
	}
}

func TestCleanSelectiveOptions(t *testing.T) {
	in := "@you see #tag at http://x.co 42 ok!"
	onlyURLs := Clean(in, CleanOptions{RemoveURLs: true, CondenseWhitespace: true})
	if strings.Contains(onlyURLs, "http") {
		t.Errorf("URL not removed: %q", onlyURLs)
	}
	if !strings.Contains(onlyURLs, "#tag") || !strings.Contains(onlyURLs, "@you") {
		t.Errorf("mention/hashtag should remain: %q", onlyURLs)
	}
	if !strings.Contains(onlyURLs, "42") || !strings.Contains(onlyURLs, "!") {
		t.Errorf("numbers/punct should remain: %q", onlyURLs)
	}
}

func TestCleanEmptyAndWhitespace(t *testing.T) {
	if got := Clean("", DefaultCleanOptions()); got != "" {
		t.Fatalf("Clean(\"\") = %q", got)
	}
	if got := Clean("   \t \n ", DefaultCleanOptions()); got != "" {
		t.Fatalf("Clean(whitespace) = %q", got)
	}
	if got := Clean("a    b\t\tc", DefaultCleanOptions()); got != "a b c" {
		t.Fatalf("whitespace not condensed: %q", got)
	}
}

func TestCleanKeepsContractions(t *testing.T) {
	got := Clean("don't stop", DefaultCleanOptions())
	if got != "don't stop" {
		t.Fatalf("contraction mangled: %q", got)
	}
}

func TestCleanNeverAddsContent(t *testing.T) {
	f := func(s string) bool {
		out := Clean(s, DefaultCleanOptions())
		// Every letter in the output must exist in the input (cleaning only
		// removes content).
		inLetters := map[rune]int{}
		for _, r := range s {
			inLetters[r]++
		}
		for _, r := range out {
			if r == ' ' || r == '\'' {
				continue
			}
			if inLetters[r] == 0 {
				return false
			}
			inLetters[r]--
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Hello, world! (really)")
	want := []string{"Hello", "world", "really"}
	if len(toks) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", toks, want)
		}
	}
	if got := Tokenize("... !!! ---"); len(got) != 0 {
		t.Fatalf("pure punctuation should tokenize to nothing, got %v", got)
	}
}

func TestLowerTokens(t *testing.T) {
	toks := LowerTokens("HeLLo WORLD")
	if toks[0] != "hello" || toks[1] != "world" {
		t.Fatalf("LowerTokens = %v", toks)
	}
}

func TestSplitSentences(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"One. Two! Three?", 3},
		{"No terminator", 1},
		{"Trailing dots...", 1},
		{"", 0},
		{"A. B.\nC", 3},
		{"!!!", 0},
	}
	for _, c := range cases {
		if got := SplitSentences(c.in); len(got) != c.want {
			t.Errorf("SplitSentences(%q) = %v (len %d), want %d", c.in, got, len(got), c.want)
		}
	}
}

func TestIsUpperWord(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"STOP", true},
		{"Stop", false},
		{"S", false}, // single letters don't count as shouting
		{"A1B", true},
		{"stop", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsUpperWord(c.in); got != c.want {
			t.Errorf("IsUpperWord(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCountUpperWords(t *testing.T) {
	n := CountUpperWords("RT STOP THAT @NOW #WOW http://X.CO ok")
	if n != 2 {
		t.Fatalf("CountUpperWords = %d, want 2 (STOP, THAT)", n)
	}
}

func TestCountTokenKind(t *testing.T) {
	s := "see @a and @b at http://x.co #yes #no #maybe"
	if n := CountTokenKind(s, IsMentionToken); n != 2 {
		t.Errorf("mentions = %d, want 2", n)
	}
	if n := CountTokenKind(s, IsHashtagToken); n != 3 {
		t.Errorf("hashtags = %d, want 3", n)
	}
	if n := CountTokenKind(s, IsURLToken); n != 1 {
		t.Errorf("urls = %d, want 1", n)
	}
}

func TestMeanWordLength(t *testing.T) {
	if got := MeanWordLength([]string{"ab", "abcd"}); got != 3 {
		t.Fatalf("MeanWordLength = %v, want 3", got)
	}
	if got := MeanWordLength(nil); got != 0 {
		t.Fatalf("MeanWordLength(nil) = %v, want 0", got)
	}
}

func TestWordsPerSentence(t *testing.T) {
	if got := WordsPerSentence("one two three. four five."); got != 2.5 {
		t.Fatalf("WordsPerSentence = %v, want 2.5", got)
	}
	if got := WordsPerSentence(""); got != 0 {
		t.Fatalf("WordsPerSentence(\"\") = %v, want 0", got)
	}
}

func TestHasElongation(t *testing.T) {
	if !HasElongation("sooo") {
		t.Fatalf("sooo should be elongated")
	}
	if HasElongation("soo") {
		t.Fatalf("soo should not be elongated")
	}
}

func TestTokenizePropertyNoPunctAtEdges(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			runes := []rune(tok)
			first, last := runes[0], runes[len(runes)-1]
			if !unicode.IsLetter(first) && !unicode.IsDigit(first) {
				return false
			}
			if !unicode.IsLetter(last) && !unicode.IsDigit(last) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
