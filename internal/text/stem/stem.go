// Package stem implements the Porter stemming algorithm (Porter 1980),
// the classic suffix-stripping normalizer for English. The adaptive
// bag-of-words can optionally stem tokens so that inflected forms of
// aggressive vocabulary ("bullies", "bullying", "bullied") consolidate
// onto one stem and cross the admission threshold sooner.
package stem

import "strings"

// Stem returns the Porter stem of a single lower-case word. Words shorter
// than three letters are returned unchanged, per the original algorithm.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	w := []byte(strings.ToLower(word))
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure returns m: the number of VC sequences in w[:k].
func measure(w []byte) int {
	m := 0
	i, n := 0, len(w)
	// Skip initial consonants.
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		// Vowel run.
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		// Consonant run.
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether w contains a vowel.
func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a double consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x, or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

func trim(w []byte, n int) []byte { return w[:len(w)-n] }

// replaceIf replaces suffix `from` with `to` when measure(stem) > minM.
func replaceIf(w []byte, from, to string, minM int) ([]byte, bool) {
	if !hasSuffix(w, from) {
		return w, false
	}
	stem := trim(w, len(from))
	if measure(stem) > minM {
		return append(append([]byte{}, stem...), to...), true
	}
	return w, true // suffix matched but condition failed: stop scanning
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return trim(w, 2)
	case hasSuffix(w, "ies"):
		return trim(w, 2)
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return trim(w, 1)
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(trim(w, 3)) > 0 {
			return trim(w, 1)
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(trim(w, 2)):
		stem = trim(w, 2)
	case hasSuffix(w, "ing") && hasVowel(trim(w, 3)):
		stem = trim(w, 3)
	default:
		return w
	}
	// Cleanup after removing -ed/-ing.
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem) && !hasSuffix(stem, "l") && !hasSuffix(stem, "s") && !hasSuffix(stem, "z"):
		return trim(stem, 1)
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(trim(w, 1)) {
		return append(trim(w, 1), 'i')
	}
	return w
}

// step2 and step3 map multi-syllable suffixes when m > 0.
var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"}, {"alli", "al"},
	{"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"},
	{"ation", "ate"}, {"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
	{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
	{"iviti", "ive"}, {"biliti", "ble"},
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func applyRules(w []byte, rules []struct{ from, to string }, minM int) []byte {
	for _, r := range rules {
		if out, matched := replaceIf(w, r.from, r.to, minM); matched {
			return out
		}
	}
	return w
}

func step2(w []byte) []byte { return applyRules(w, step2Rules, 0) }
func step3(w []byte) []byte { return applyRules(w, step3Rules, 0) }

// step4 strips residual suffixes when m > 1.
var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	// "ion" requires a preceding s or t.
	if hasSuffix(w, "ion") {
		stem := trim(w, 3)
		if len(stem) > 0 && (stem[len(stem)-1] == 's' || stem[len(stem)-1] == 't') &&
			measure(stem) > 1 {
			return stem
		}
	}
	for _, s := range step4Suffixes {
		if hasSuffix(w, s) {
			if stem := trim(w, len(s)); measure(stem) > 1 {
				return stem
			}
			return w
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		stem := trim(w, 1)
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			return stem
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && hasSuffix(w, "ll") {
		return trim(w, 1)
	}
	return w
}
