package stem

import "testing"

// TestPorterVectors checks classic input/output pairs from Porter's paper
// and the standard reference vocabulary.
func TestPorterVectors(t *testing.T) {
	cases := map[string]string{
		// Step 1a.
		"caresses": "caress",
		"ponies":   "poni",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b.
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c.
		"happy": "happi",
		"sky":   "sky",
		// Step 2.
		"relational":     "relat",
		"conditional":    "condit",
		"valenci":        "valenc",
		"digitizer":      "digit",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3.
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4.
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5.
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// Domain vocabulary.
		"bullying":  "bulli",
		"bullied":   "bulli",
		"bullies":   "bulli",
		"insulting": "insult",
		"insulted":  "insult",
		"insults":   "insult",
		"haters":    "hater",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming an already-stemmed common word should usually be stable.
	for _, w := range []string{"run", "cat", "insult", "troubl", "hop"} {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemLowercases(t *testing.T) {
	if Stem("BULLYING") != Stem("bullying") {
		t.Errorf("Stem should be case-insensitive")
	}
}

func TestInflectedFormsConsolidate(t *testing.T) {
	groups := [][]string{
		{"bullying", "bullied", "bullies"},
		{"insulting", "insulted", "insults"},
		{"threatening", "threatened", "threatens"},
	}
	for _, g := range groups {
		stems := map[string]bool{}
		for _, w := range g {
			stems[Stem(w)] = true
		}
		if len(stems) != 1 {
			t.Errorf("forms %v map to %d stems, want 1", g, len(stems))
		}
	}
}
