package text

import (
	"strings"
	"unicode"
)

// Tokenize splits text into word tokens: whitespace-separated fields with
// surrounding punctuation trimmed. Tokens that contain no letters or digits
// are dropped. Case is preserved.
func Tokenize(s string) []string {
	fields := strings.Fields(s)
	toks := make([]string, 0, len(fields))
	for _, f := range fields {
		t := trimPunct(f)
		if t != "" {
			toks = append(toks, t)
		}
	}
	return toks
}

// LowerTokens tokenizes and lower-cases in a single pass.
func LowerTokens(s string) []string {
	toks := Tokenize(s)
	for i, t := range toks {
		toks[i] = strings.ToLower(t)
	}
	return toks
}

// SplitSentences splits text into sentences on '.', '!', '?' and newline
// boundaries. Runs of terminators count once; empty sentences are dropped.
// A text with no terminator is a single sentence.
func SplitSentences(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		sent := strings.TrimSpace(b.String())
		if sent != "" && hasLetter(sent) {
			out = append(out, sent)
		}
		b.Reset()
	}
	for _, r := range s {
		switch r {
		case '.', '!', '?', '\n':
			flush()
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return out
}

// IsUpperWord reports whether the token is an uppercase "shouted" word:
// at least two letters, all of them uppercase.
func IsUpperWord(tok string) bool {
	letters := 0
	for _, r := range tok {
		if unicode.IsLetter(r) {
			if !unicode.IsUpper(r) {
				return false
			}
			letters++
		}
	}
	return letters >= 2
}

// CountUpperWords counts uppercase words in the text (e.g. "STOP THAT" has
// two). Mentions, hashtags, URLs and the RT marker are not counted.
func CountUpperWords(s string) int {
	n := 0
	for _, f := range strings.Fields(s) {
		if IsURLToken(f) || IsMentionToken(f) || IsHashtagToken(f) {
			continue
		}
		t := trimPunct(f)
		if t == "" || strings.EqualFold(t, "rt") {
			continue
		}
		if IsUpperWord(t) {
			n++
		}
	}
	return n
}

// CountTokenKind counts raw-text tokens matched by the given predicate.
func CountTokenKind(s string, match func(string) bool) int {
	n := 0
	for _, f := range strings.Fields(s) {
		if match(f) {
			n++
		}
	}
	return n
}

// MeanWordLength returns the mean number of letters per word token, or 0
// for empty text.
func MeanWordLength(tokens []string) float64 {
	if len(tokens) == 0 {
		return 0
	}
	total := 0
	for _, t := range tokens {
		for _, r := range t {
			if unicode.IsLetter(r) {
				total++
			}
		}
	}
	return float64(total) / float64(len(tokens))
}

// WordsPerSentence returns the mean number of word tokens per sentence,
// or 0 for empty text.
func WordsPerSentence(s string) float64 {
	sentences := SplitSentences(s)
	if len(sentences) == 0 {
		return 0
	}
	total := 0
	for _, sent := range sentences {
		total += len(Tokenize(sent))
	}
	return float64(total) / float64(len(sentences))
}

// HasElongation reports whether the token has a letter repeated three or
// more times in a row ("sooo"), a common emphasis marker in tweets.
func HasElongation(tok string) bool {
	run, prev := 0, rune(-1)
	for _, r := range tok {
		if r == prev {
			run++
			if run >= 3 {
				return true
			}
		} else {
			prev, run = r, 1
		}
	}
	return false
}

func hasLetter(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}
