// Package text implements the tweet text processing substrate of the
// detection pipeline: cleaning (the paper's "preprocessing" step),
// tokenization, and sentence splitting. Heavier linguistic components live
// in the subpackages pos (part-of-speech tagging), sentiment
// (SentiStrength-style scoring), and lexicon (profanity word lists).
package text

import (
	"strings"
	"unicode"
)

// CleanOptions selects which preprocessing transformations Clean applies.
// The zero value applies nothing; DefaultCleanOptions enables everything the
// paper describes in §III-A (Preprocessing).
type CleanOptions struct {
	RemoveURLs          bool // strip http://, https:// and www. tokens
	RemoveMentions      bool // strip @user tokens
	RemoveHashtags      bool // strip #hashtag tokens
	RemoveAbbreviations bool // strip tweet abbreviations such as RT
	RemoveNumbers       bool // strip digits
	RemovePunctuation   bool // strip punctuation marks and special symbols
	CondenseWhitespace  bool // collapse whitespace runs to single spaces
}

// DefaultCleanOptions enables the full preprocessing described in the paper:
// removing numbers, punctuation marks, special symbols and URLs, condensing
// white space, and removing tweet-specific content (RT, hashtags, mentions).
func DefaultCleanOptions() CleanOptions {
	return CleanOptions{
		RemoveURLs:          true,
		RemoveMentions:      true,
		RemoveHashtags:      true,
		RemoveAbbreviations: true,
		RemoveNumbers:       true,
		RemovePunctuation:   true,
		CondenseWhitespace:  true,
	}
}

// tweetAbbreviations are well-known tweet-specific tokens removed during
// preprocessing when RemoveAbbreviations is set.
var tweetAbbreviations = map[string]bool{
	"rt": true, "mt": true, "ht": true, "cc": true, "dm": true,
	"prt": true, "tmb": true, "oh": true, "fb": true, "ff": true,
}

// IsURLToken reports whether the token looks like a URL.
func IsURLToken(tok string) bool {
	lower := strings.ToLower(tok)
	return strings.HasPrefix(lower, "http://") ||
		strings.HasPrefix(lower, "https://") ||
		strings.HasPrefix(lower, "www.") ||
		strings.HasPrefix(lower, "t.co/")
}

// IsMentionToken reports whether the token is a user mention (@name).
func IsMentionToken(tok string) bool {
	return len(tok) > 1 && tok[0] == '@'
}

// IsHashtagToken reports whether the token is a hashtag (#tag).
func IsHashtagToken(tok string) bool {
	return len(tok) > 1 && tok[0] == '#'
}

// Clean applies the selected preprocessing transformations to a tweet text
// and returns the cleaned text. Case is preserved: downstream features such
// as the uppercase-word count rely on it.
func Clean(s string, opts CleanOptions) string {
	fields := strings.Fields(s)
	var b strings.Builder
	b.Grow(len(s))
	for _, tok := range fields {
		switch {
		case opts.RemoveURLs && IsURLToken(tok):
			continue
		case opts.RemoveMentions && IsMentionToken(tok):
			continue
		case opts.RemoveHashtags && IsHashtagToken(tok):
			continue
		case opts.RemoveAbbreviations && tweetAbbreviations[strings.ToLower(trimPunct(tok))]:
			continue
		}
		cleaned := cleanToken(tok, opts)
		if cleaned == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(cleaned)
	}
	out := b.String()
	if !opts.CondenseWhitespace && out == "" {
		// Preserve original when everything was filtered but condensing is
		// off; callers not requesting condensing get a best-effort result.
		return out
	}
	return out
}

// cleanToken removes numbers and punctuation from a single token according
// to the options, keeping sentence-final punctuation only when punctuation
// removal is disabled.
func cleanToken(tok string, opts CleanOptions) string {
	var b strings.Builder
	b.Grow(len(tok))
	for _, r := range tok {
		switch {
		case unicode.IsLetter(r):
			b.WriteRune(r)
		case r == '\'' && !opts.RemovePunctuation:
			b.WriteRune(r)
		case r == '\'': // keep apostrophes inside contractions (don't)
			b.WriteRune(r)
		case unicode.IsDigit(r):
			if !opts.RemoveNumbers {
				b.WriteRune(r)
			}
		default:
			if !opts.RemovePunctuation {
				b.WriteRune(r)
			}
		}
	}
	// A token that was pure punctuation/digits vanishes entirely.
	return strings.Trim(b.String(), "'")
}

// trimPunct strips leading and trailing non-letter runes from a token.
func trimPunct(tok string) string {
	return strings.TrimFunc(tok, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}
