package text

import (
	"strings"
	"testing"
)

func TestScanBasics(t *testing.T) {
	var sc Scratch
	sc.Scan("RT @user: STOP THAT now!! see http://t.co/x #fail. It's sooo bad.")
	if got, want := sc.Stats.Hashtags, 1; got != want {
		t.Errorf("hashtags = %d, want %d", got, want)
	}
	if got, want := sc.Stats.URLs, 1; got != want {
		t.Errorf("urls = %d, want %d", got, want)
	}
	if got, want := sc.Stats.Mentions, 1; got != want {
		t.Errorf("mentions = %d, want %d", got, want)
	}
	if got, want := sc.Stats.UpperWords, 2; got != want {
		t.Errorf("upper words = %d, want %d (STOP THAT)", got, want)
	}
	words := make([]string, sc.Words())
	for i := range words {
		words[i] = string(sc.Clean(i))
	}
	want := []string{"STOP", "THAT", "now", "see", "It's", "sooo", "bad"}
	if strings.Join(words, " ") != strings.Join(want, " ") {
		t.Errorf("words = %q, want %q", words, want)
	}
	if _, _, elongated := sc.WordInfo(5); !elongated {
		t.Errorf("expected %q to be elongated", words[5])
	}
}

func TestScanSentencesSkipEntityDots(t *testing.T) {
	var sc Scratch
	// URL dots must not fabricate sentence boundaries; abbreviation and
	// entity tokens are stripped before sentence splitting.
	sc.Scan("first part http://a.b.c/d.e second part. and a third!")
	if got, want := sc.Stats.Sentences, 2; got != want {
		t.Errorf("sentences = %d, want %d", got, want)
	}
}

func TestScanReuseIsClean(t *testing.T) {
	var sc Scratch
	sc.Scan("aaa bbb ccc. ddd!")
	sc.Scan("x")
	if sc.Words() != 1 || string(sc.Clean(0)) != "x" || sc.Stats.Sentences != 1 {
		t.Errorf("reused scratch leaked state: words=%d stats=%+v", sc.Words(), sc.Stats)
	}
}

// TestScanZeroAlloc pins the tentpole property: a warmed scratch processes
// a tweet without allocating.
func TestScanZeroAlloc(t *testing.T) {
	var sc Scratch
	sc.Scan(benchTweet) // warm the arenas
	allocs := testing.AllocsPerRun(100, func() {
		sc.Scan(benchTweet)
	})
	if allocs != 0 {
		t.Errorf("Scan allocates %.1f times per tweet, want 0", allocs)
	}
}
