package text

import (
	"unicode"
	"unicode/utf8"
)

// This file is the single-pass, (near-)zero-allocation fast path over the
// preprocessing substrate. A Scratch owns reusable byte arenas and a token
// table; Scan walks the raw tweet text once, splitting fields exactly like
// strings.Fields, classifying each field (URL / mention / hashtag /
// abbreviation / word), writing the cleaned and lowercased forms of every
// surviving word into the arenas, and accumulating the whole-tweet counts
// the feature extractor needs (hashtags, URLs, shouted words, sentence
// boundaries of the entity-stripped text, letter totals).
//
// The semantics are pinned to the legacy pipeline with DefaultCleanOptions:
//
//	words   == Tokenize(Clean(s, DefaultCleanOptions()))
//	Lower(i) == strings.ToLower(words[i])
//	Hashtags == CountTokenKind(s, IsHashtagToken)
//	URLs     == CountTokenKind(s, IsURLToken)
//	UpperWords == CountUpperWords(s)
//	Sentences  == len(SplitSentences(Clean(s, sentence options)))
//
// where "sentence options" strips entities but keeps punctuation (the
// extractor's sentOpts). FuzzTokenizeFast and the feature-package golden
// test enforce these equalities against the legacy implementations.

// ScanStats are the whole-tweet counts gathered during one Scan pass.
type ScanStats struct {
	Hashtags   int // '#'-prefixed tokens (len > 1)
	Mentions   int // '@'-prefixed tokens (len > 1)
	URLs       int // http://, https://, www., t.co/ tokens
	UpperWords int // shouted words per CountUpperWords semantics
	// Sentences counts sentences of the entity-stripped text: chunks
	// between '.', '!', '?' that contain at least one letter.
	Sentences int
	// LetterSum is the total letter-rune count over the word tokens
	// (the numerator of MeanWordLength).
	LetterSum int
}

// word is one cleaned token: spans into the Scratch arenas plus per-token
// statistics gathered during the scan.
type word struct {
	cleanOff, cleanEnd int32 // span in Scratch.clean (case preserved)
	lowerOff, lowerEnd int32 // span in Scratch.lower
	letters, uppers    int32 // letter runes / uppercase letter runes
	elongated          bool  // a rune repeated >= 3 times in a row
}

// Scratch is the reusable state of the single-pass scanner. The zero value
// is ready to use; Scan resets it. A Scratch must not be shared between
// goroutines — pool one per worker (the feature extractor keeps a
// sync.Pool of them).
type Scratch struct {
	Stats ScanStats

	clean []byte // arena of cleaned, case-preserved token bytes
	lower []byte // arena of cleaned, lowercased token bytes
	words []word

	sentHasLetter bool
}

// maxRetainedArena and maxRetainedWords bound the buffer capacities a
// Scratch keeps between scans, so one pathological multi-kilobyte tweet
// does not pin its arenas or token table in the pool forever.
const (
	maxRetainedArena = 64 << 10
	maxRetainedWords = 4 << 10
)

// Reset clears the scratch for reuse, dropping oversized buffers.
//
//redvet:noalloc gate=FeaturePathScan
func (s *Scratch) Reset() {
	s.Stats = ScanStats{}
	s.sentHasLetter = false
	if cap(s.clean) > maxRetainedArena {
		s.clean = nil
	}
	if cap(s.lower) > maxRetainedArena {
		s.lower = nil
	}
	if cap(s.words) > maxRetainedWords {
		s.words = nil
	}
	s.clean = s.clean[:0]
	s.lower = s.lower[:0]
	s.words = s.words[:0]
}

// Words returns the number of word tokens produced by the last Scan.
func (s *Scratch) Words() int { return len(s.words) }

// Clean returns word i's cleaned, case-preserved bytes. The slice aliases
// the scratch arena: it is valid until the next Scan or Reset and must not
// be mutated.
func (s *Scratch) Clean(i int) []byte {
	w := &s.words[i]
	return s.clean[w.cleanOff:w.cleanEnd]
}

// Lower returns word i's cleaned, lowercased bytes (same aliasing rules as
// Clean).
func (s *Scratch) Lower(i int) []byte {
	w := &s.words[i]
	return s.lower[w.lowerOff:w.lowerEnd]
}

// WordInfo returns word i's letter count, uppercase-letter count, and
// whether it carries an elongation ("sooo").
func (s *Scratch) WordInfo(i int) (letters, uppers int, elongated bool) {
	w := &s.words[i]
	return int(w.letters), int(w.uppers), w.elongated
}

// Scan processes one tweet text. Any previous scan state is discarded.
//
//redvet:noalloc gate=FeaturePathScan
func (s *Scratch) Scan(src string) {
	s.Reset()
	i, n := 0, len(src)
	for i < n {
		r, sz := utf8.DecodeRuneInString(src[i:])
		if unicode.IsSpace(r) {
			i += sz
			continue
		}
		start := i
		i += sz
		for i < n {
			r, sz = utf8.DecodeRuneInString(src[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += sz
		}
		s.field(src[start:i])
	}
	// Final sentence flush (SplitSentences flushes the trailing chunk).
	if s.sentHasLetter {
		s.Stats.Sentences++
		s.sentHasLetter = false
	}
}

// field processes one whitespace-delimited token of the raw text.
//
//redvet:noalloc gate=FeaturePathScan
func (s *Scratch) field(f string) {
	// Entity classification mirrors IsMentionToken / IsHashtagToken /
	// IsURLToken; the three are mutually exclusive by first byte.
	if len(f) > 1 && f[0] == '@' {
		s.Stats.Mentions++
		return
	}
	if len(f) > 1 && f[0] == '#' {
		s.Stats.Hashtags++
		return
	}
	if isURLField(f) {
		s.Stats.URLs++
		return
	}

	// Single rune pass: trimPunct bounds, letter statistics, and the
	// cleaned + lowered bytes (letters and apostrophes survive cleaning).
	cOff, lOff := len(s.clean), len(s.lower)
	var letters, uppers int32
	firstAl, lastAlEnd := -1, -1 // outermost letter-or-digit byte offsets
	for i := 0; i < len(f); {
		r, sz := utf8.DecodeRuneInString(f[i:])
		isLetter := unicode.IsLetter(r)
		if isLetter || unicode.IsDigit(r) {
			if firstAl < 0 {
				firstAl = i
			}
			lastAlEnd = i + sz
		}
		if isLetter {
			letters++
			if unicode.IsUpper(r) {
				uppers++
			}
			s.clean = append(s.clean, f[i:i+sz]...)
			s.lower = utf8.AppendRune(s.lower, unicode.ToLower(r))
		} else if r == '\'' {
			s.clean = append(s.clean, '\'')
			s.lower = append(s.lower, '\'')
		}
		i += sz
	}
	trimmed := ""
	if firstAl >= 0 {
		trimmed = f[firstAl:lastAlEnd]
	}

	// Shouted-word count (CountUpperWords): trimmed token present, not
	// "RT", at least two letters, every letter uppercase. All letters are
	// alphanumeric, so field-wide letter counts equal trimmed-range counts.
	if trimmed != "" && !isFoldRT(trimmed) && letters >= 2 && uppers == letters {
		s.Stats.UpperWords++
	}

	// Abbreviation tokens (RT, DM, ...) are removed by both the word
	// cleaning and the sentence-boundary cleaning, so they contribute
	// neither a word nor sentence events.
	if trimmed != "" && isAbbrevField(trimmed) {
		s.clean = s.clean[:cOff]
		s.lower = s.lower[:lOff]
		return
	}

	// Sentence events of the entity-stripped text: '.', '!', '?' flush a
	// sentence; letters mark the current sentence non-empty.
	for i := 0; i < len(f); {
		c := f[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '.' || c == '!' || c == '?':
				if s.sentHasLetter {
					s.Stats.Sentences++
				}
				s.sentHasLetter = false
			case 'a' <= c|0x20 && c|0x20 <= 'z':
				s.sentHasLetter = true
			}
			i++
			continue
		}
		r, sz := utf8.DecodeRuneInString(f[i:])
		if unicode.IsLetter(r) {
			s.sentHasLetter = true
		}
		i += sz
	}

	// Finalize the word token: trim apostrophes at both ends (cleanToken's
	// strings.Trim(.., "'")). Apostrophes are single bytes in both arenas
	// and occupy the same rune positions, so the trim counts transfer.
	cb := s.clean[cOff:]
	la := 0
	for la < len(cb) && cb[la] == '\'' {
		la++
	}
	tb := len(cb)
	for tb > la && cb[tb-1] == '\'' {
		tb--
	}
	if la == tb { // nothing left: the field cleans away entirely
		s.clean = s.clean[:cOff]
		s.lower = s.lower[:lOff]
		return
	}
	lb := s.lower[lOff:]
	lEnd := len(lb)
	ta := len(cb) - tb // trailing apostrophe count
	s.words = append(s.words, word{
		cleanOff:  int32(cOff + la),
		cleanEnd:  int32(cOff + tb),
		lowerOff:  int32(lOff + la),
		lowerEnd:  int32(lOff + lEnd - ta),
		letters:   letters,
		uppers:    uppers,
		elongated: hasElongationBytes(s.clean[cOff+la : cOff+tb]),
	})
	s.Stats.LetterSum += int(letters)
}

// isURLField mirrors IsURLToken without lowercasing the whole token: the
// prefixes are ASCII, and no non-ASCII rune lowercases into them.
func isURLField(f string) bool {
	return hasFoldPrefix(f, "http://") ||
		hasFoldPrefix(f, "https://") ||
		hasFoldPrefix(f, "www.") ||
		hasFoldPrefix(f, "t.co/")
}

// hasFoldPrefix reports whether s starts with the lowercase-ASCII prefix p,
// ignoring ASCII case.
func hasFoldPrefix(s, p string) bool {
	if len(s) < len(p) {
		return false
	}
	for i := 0; i < len(p); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c |= 0x20
		}
		if c != p[i] {
			return false
		}
	}
	return true
}

// isFoldRT reports strings.EqualFold(t, "rt"). The fold orbits of 'r' and
// 't' contain only their ASCII case pair, so a byte compare is exact.
func isFoldRT(t string) bool {
	return len(t) == 2 && t[0]|0x20 == 'r' && t[1]|0x20 == 't'
}

// isAbbrevField reports whether the trimmed token lowercases into the
// tweet-abbreviation set. The set is pure lowercase ASCII and no non-ASCII
// rune lowercases onto its letters, so an ASCII fold compare is exact.
func isAbbrevField(t string) bool {
	switch len(t) {
	case 2:
		a, b := t[0]|0x20, t[1]|0x20
		switch {
		case a == 'r' && b == 't', // rt
			a == 'm' && b == 't', // mt
			a == 'h' && b == 't', // ht
			a == 'c' && b == 'c', // cc
			a == 'd' && b == 'm', // dm
			a == 'o' && b == 'h', // oh
			a == 'f' && b == 'b', // fb
			a == 'f' && b == 'f': // ff
			return true
		}
	case 3:
		a, b, c := t[0]|0x20, t[1]|0x20, t[2]|0x20
		if a == 'p' && b == 'r' && c == 't' { // prt
			return true
		}
		if a == 't' && b == 'm' && c == 'b' { // tmb
			return true
		}
	}
	return false
}

// hasElongationBytes is HasElongation over a byte slice.
func hasElongationBytes(b []byte) bool {
	run, prev := 0, rune(-1)
	for i := 0; i < len(b); {
		r, sz := utf8.DecodeRune(b[i:])
		if r == prev {
			run++
			if run >= 3 {
				return true
			}
		} else {
			prev, run = r, 1
		}
		i += sz
	}
	return false
}
