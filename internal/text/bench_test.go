package text

import "testing"

const benchTweet = "RT @somebody: OMG this is SOOO bad, check http://t.co/abc123 " +
	"the 2nd game of the season was a total mess!! #fail #sports 100%"

func BenchmarkClean(b *testing.B) {
	opts := DefaultCleanOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Clean(benchTweet, opts)
	}
}

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchTweet)
	}
}

func BenchmarkSplitSentences(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SplitSentences(benchTweet)
	}
}

func BenchmarkCountUpperWords(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountUpperWords(benchTweet)
	}
}
