package text

import "testing"

const benchTweet = "RT @somebody: OMG this is SOOO bad, check http://t.co/abc123 " +
	"the 2nd game of the season was a total mess!! #fail #sports 100%"

func BenchmarkClean(b *testing.B) {
	opts := DefaultCleanOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Clean(benchTweet, opts)
	}
}

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchTweet)
	}
}

func BenchmarkSplitSentences(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SplitSentences(benchTweet)
	}
}

func BenchmarkCountUpperWords(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountUpperWords(benchTweet)
	}
}

// BenchmarkFeaturePathScan measures the single-pass scanner against the
// sum of the legacy passes it replaces (Clean + Tokenize + counts).
func BenchmarkFeaturePathScan(b *testing.B) {
	var sc Scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Scan(benchTweet)
	}
}

// BenchmarkFeaturePathScanLegacy is the equivalent legacy work: the same
// token stream and counts produced by the multi-pass implementation.
func BenchmarkFeaturePathScanLegacy(b *testing.B) {
	opts := DefaultCleanOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		toks := Tokenize(Clean(benchTweet, opts))
		_ = toks
		CountTokenKind(benchTweet, IsHashtagToken)
		CountTokenKind(benchTweet, IsURLToken)
		CountUpperWords(benchTweet)
	}
}
