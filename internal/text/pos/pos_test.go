package pos

import "testing"

func tagOf(t *testing.T, sentence []string, i int) Tag {
	t.Helper()
	return New().TagTokens(sentence)[i]
}

func TestClosedClassWords(t *testing.T) {
	cases := []struct {
		word string
		want Tag
	}{
		{"the", Determiner},
		{"they", Pronoun},
		{"with", Preposition},
		{"and", Conjunction},
		{"lol", Interjection},
		{"is", Verb},
		{"very", Adverb},
		{"good", Adjective},
		{"run", Verb},
	}
	for _, c := range cases {
		if got := tagOf(t, []string{c.word}, 0); got != c.want {
			t.Errorf("tag(%q) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestSuffixRules(t *testing.T) {
	cases := []struct {
		word string
		want Tag
	}{
		{"quickly", Adverb},
		{"wonderful", Adjective},
		{"spiteful", Adjective},
		{"flexible", Adjective},
		{"jumping", Verb},
		{"zoomed", Verb},
		{"apparition", Noun},
		{"blargness", Noun},
		{"zork", Noun}, // unknown word defaults to noun
	}
	for _, c := range cases {
		if got := tagOf(t, []string{c.word}, 0); got != c.want {
			t.Errorf("tag(%q) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestContextRules(t *testing.T) {
	// "to frobnicate" -> verb even though unknown.
	if got := tagOf(t, []string{"to", "frobnicate"}, 1); got != Verb {
		t.Errorf("to+word = %v, want Verb", got)
	}
	// "the jumping" -> noun (determiner context).
	if got := tagOf(t, []string{"the", "jumping"}, 1); got != Noun {
		t.Errorf("det+Xing = %v, want Noun", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	if got := tagOf(t, []string{"QUICKLY"}, 0); got != Adverb {
		t.Errorf("tag(QUICKLY) = %v, want Adverb", got)
	}
}

func TestCount(t *testing.T) {
	c := New().Count([]string{"the", "ugly", "dog", "runs", "quickly"})
	if c.Adjectives != 1 || c.Adverbs != 1 || c.Verbs != 1 || c.Nouns != 1 {
		t.Fatalf("Count = %+v, want 1 each of ADJ/ADV/VERB/NOUN", c)
	}
	if c.Total != 5 {
		t.Fatalf("Total = %d, want 5", c.Total)
	}
}

func TestEmptyAndGarbage(t *testing.T) {
	tags := New().TagTokens([]string{"", "123", "..."})
	for i, tag := range tags {
		if tag != Other {
			t.Errorf("token %d tagged %v, want Other", i, tag)
		}
	}
}

func TestTagString(t *testing.T) {
	if Noun.String() != "NOUN" || Adverb.String() != "ADV" || Tag(99).String() != "OTHER" {
		t.Fatalf("Tag.String misbehaves: %v %v %v", Noun, Adverb, Tag(99))
	}
}
