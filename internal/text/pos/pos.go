// Package pos implements a lightweight rule- and lexicon-based
// part-of-speech tagger. The detection pipeline only consumes the relative
// frequencies of adjectives, adverbs, and verbs (the paper's syntactic
// features), so the tagger favours speed and determinism over full
// Penn-Treebank fidelity: closed-class word lists resolve the common words,
// suffix heuristics resolve the open-class remainder, and a small amount of
// context (preceding determiner or "to") disambiguates nouns from verbs.
package pos

import (
	"strings"
	"unicode"
)

// Tag is a coarse part-of-speech category.
type Tag int

// Coarse tag set. Other covers symbols, numbers already filtered upstream,
// and anything unrecognizable.
const (
	Noun Tag = iota
	Verb
	Adjective
	Adverb
	Pronoun
	Determiner
	Preposition
	Conjunction
	Interjection
	Other
)

// String returns the conventional short name of the tag.
func (t Tag) String() string {
	switch t {
	case Noun:
		return "NOUN"
	case Verb:
		return "VERB"
	case Adjective:
		return "ADJ"
	case Adverb:
		return "ADV"
	case Pronoun:
		return "PRON"
	case Determiner:
		return "DET"
	case Preposition:
		return "PREP"
	case Conjunction:
		return "CONJ"
	case Interjection:
		return "INTJ"
	default:
		return "OTHER"
	}
}

var determiners = wordSet("a an the this that these those each every either neither some any no all both half several such what which whose my your his her its our their")

var pronouns = wordSet("i you he she it we they me him us them myself yourself himself herself itself ourselves themselves who whom whoever anyone everyone someone nobody anybody everybody something anything everything nothing mine yours hers ours theirs")

var prepositions = wordSet("in on at by for with about against between into through during before after above below to from up down of off over under again further near behind beyond within without across along around past toward towards upon onto")

var conjunctions = wordSet("and but or nor so yet because although though while whereas unless since if when whenever where wherever than whether")

var interjections = wordSet("oh wow ugh hey yay ouch oops hmm huh aha lol lmao omg wtf damn whoa yikes meh duh nah yeah yep nope ok okay")

// auxiliaries and modals are tagged as verbs.
var auxVerbs = wordSet("am is are was were be been being have has had do does did will would shall should can could may might must wont dont doesnt didnt cant couldnt shouldnt wouldnt aint isnt arent wasnt werent havent hasnt hadnt")

var commonVerbs = wordSet("go goes went gone going get gets got gotten getting make makes made making know knows knew known think thinks thought take takes took taken say says said see sees saw seen come comes came want wants wanted wanting look looks looked looking use uses used find finds found give gives gave given tell tells told work works worked call calls called try tries tried tried ask asks asked need needs needed feel feels felt become becomes became leave leaves left put puts mean means meant keep keeps kept let lets begin begins began seem seems seemed help helps helped talk talks talked turn turns turned start starts started show shows showed hear hears heard play plays played run runs ran move moves moved like likes liked live lives lived believe believes believed hold holds held bring brings brought happen happens happened write writes wrote provide provides provided sit sits sat stand stands stood lose loses lost pay pays paid meet meets met include includes included continue continues continued set sets learn learns learned change changes changed lead leads led understand understands understood watch watches watched follow follows followed stop stops stopped create creates created speak speaks spoke read reads spend spends spent grow grows grew open opens opened walk walks walked win wins won offer offers offered remember remembers remembered love loves loved consider considers considered appear appears appeared buy buys bought wait waits waited serve serves served die dies died send sends sent expect expects expected build builds built stay stays stayed fall falls fell cut cuts reach reaches reached kill kills killed remain remains remained hate hates hated suck sucks sucked shut shuts deserve deserves deserved")

var commonAdjectives = wordSet("good bad great small large big little old new young long short high low right wrong different same important public able early late hard easy strong weak free full special whole clear recent certain personal open red blue green white black happy sad angry stupid dumb ugly pretty beautiful horrible terrible awful nice awesome amazing pathetic disgusting nasty vile worthless useless lazy crazy insane sick evil cruel mean rude selfish arrogant ignorant toxic fake real true false serious funny ridiculous absurd miserable foul dirty filthy rotten gross creepy weird strange wild calm quiet loud proud brave afraid worried ashamed jealous bitter hostile violent dangerous harmless innocent guilty poor rich cheap expensive huge tiny enormous massive endless empty alone lonely lovely sweet kind gentle warm cold hot cool dark bright best worst better worse")

var commonAdverbs = wordSet("very really quite too so just only now then here there always never often sometimes usually rarely seldom already still yet soon today tomorrow yesterday maybe perhaps probably definitely certainly absolutely totally completely utterly extremely incredibly honestly seriously literally actually finally suddenly quickly slowly badly well almost nearly hardly barely again once twice everywhere nowhere somewhere anymore together apart away back forward instead otherwise anyway even ever not")

// Tagger assigns coarse POS tags to token sequences. The zero value is
// ready to use.
type Tagger struct{}

// New returns a ready Tagger.
func New() *Tagger { return &Tagger{} }

// TagTokens tags each token in sequence. Tokens are expected to be words
// (no URLs/mentions); case is ignored.
func (tg *Tagger) TagTokens(tokens []string) []Tag {
	tags := make([]Tag, len(tokens))
	for i, tok := range tokens {
		tags[i] = tg.tagOne(strings.ToLower(strip(tok)), i, tokens, tags)
	}
	return tags
}

// Counts summarises a tag sequence.
type Counts struct {
	Nouns, Verbs, Adjectives, Adverbs int
	Total                             int
}

// Count tags the tokens and tallies the open-class categories the feature
// extractor consumes.
func (tg *Tagger) Count(tokens []string) Counts {
	var c Counts
	for _, t := range tg.TagTokens(tokens) {
		c.Total++
		switch t {
		case Noun:
			c.Nouns++
		case Verb:
			c.Verbs++
		case Adjective:
			c.Adjectives++
		case Adverb:
			c.Adverbs++
		}
	}
	return c
}

// TagLowerWord is the allocation-free fast path: it tags one word that the
// caller has already cleaned (letter ends, no digits) and lowercased, given
// its left context — the previous word in the same lowered form (nil at the
// start of the text) and the tag assigned to it. It mirrors the tagOne
// decision procedure exactly; the feature package's golden and fuzz tests
// pin the two paths together. Map lookups use the map[string(bytes)] form,
// which Go compiles without allocating.
func (tg *Tagger) TagLowerWord(w, prev []byte, prevTag Tag) Tag {
	if len(w) == 0 {
		return Other
	}
	switch {
	case determiners[string(w)]:
		return Determiner
	case pronouns[string(w)]:
		return Pronoun
	case prepositions[string(w)]:
		return Preposition
	case conjunctions[string(w)]:
		return Conjunction
	case interjections[string(w)]:
		return Interjection
	case auxVerbs[string(w)]:
		return Verb
	case commonAdverbs[string(w)]:
		return Adverb
	case commonAdjectives[string(w)]:
		return Adjective
	case commonVerbs[string(w)]:
		return Verb
	}
	if prev != nil && len(prev) == 2 && prev[0] == 't' && prev[1] == 'o' &&
		!suffixAdjectiveB(w) && !suffixNounB(w) {
		return Verb
	}
	switch {
	case hasSuffixB(w, "ly") && len(w) > 3:
		return Adverb
	case suffixAdjectiveB(w):
		return Adjective
	case suffixVerbB(w):
		if prevTag == Determiner && prev != nil {
			return Noun
		}
		return Verb
	case suffixNounB(w):
		return Noun
	default:
		return Noun
	}
}

func (tg *Tagger) tagOne(w string, i int, tokens []string, tags []Tag) Tag {
	if w == "" {
		return Other
	}
	switch {
	case determiners[w]:
		return Determiner
	case pronouns[w]:
		return Pronoun
	case prepositions[w]:
		return Preposition
	case conjunctions[w]:
		return Conjunction
	case interjections[w]:
		return Interjection
	case auxVerbs[w]:
		return Verb
	case commonAdverbs[w]:
		return Adverb
	case commonAdjectives[w]:
		return Adjective
	case commonVerbs[w]:
		return Verb
	}
	// Context: "to <word>" is an infinitive verb; "<det> <word>" leans noun
	// unless suffix says adjective.
	if i > 0 {
		prev := strings.ToLower(strip(tokens[i-1]))
		if prev == "to" && !suffixAdjective(w) && !suffixNoun(w) {
			return Verb
		}
	}
	switch {
	case strings.HasSuffix(w, "ly") && len(w) > 3:
		return Adverb
	case suffixAdjective(w):
		return Adjective
	case suffixVerb(w):
		// "<det> Xing" reads as a noun ("the running"), keep it simple: a
		// preceding determiner makes any open-class word a noun.
		if i > 0 && tags[i-1] == Determiner {
			return Noun
		}
		return Verb
	case suffixNoun(w):
		return Noun
	default:
		return Noun
	}
}

func suffixAdjective(w string) bool {
	for _, s := range [...]string{"ful", "ous", "ive", "able", "ible", "ish", "less", "ic", "al", "ant", "ent", "est"} {
		if strings.HasSuffix(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

func suffixVerb(w string) bool {
	for _, s := range [...]string{"ing", "ed", "ize", "ise", "ify", "ate"} {
		if strings.HasSuffix(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

func suffixNoun(w string) bool {
	for _, s := range [...]string{"tion", "sion", "ness", "ment", "ity", "ship", "hood", "ism", "ist", "er", "or", "ology"} {
		if strings.HasSuffix(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

// adjSuffixes, verbSuffixes, and nounSuffixes are the suffix tables shared
// by the byte-slice helpers below; the string helpers keep their original
// literals so the legacy path stays byte-for-byte intact.
var (
	adjSuffixes  = []string{"ful", "ous", "ive", "able", "ible", "ish", "less", "ic", "al", "ant", "ent", "est"}
	verbSuffixes = []string{"ing", "ed", "ize", "ise", "ify", "ate"}
	nounSuffixes = []string{"tion", "sion", "ness", "ment", "ity", "ship", "hood", "ism", "ist", "er", "or", "ology"}
)

func hasSuffixB(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

func suffixAdjectiveB(w []byte) bool {
	for _, s := range adjSuffixes {
		if hasSuffixB(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

func suffixVerbB(w []byte) bool {
	for _, s := range verbSuffixes {
		if hasSuffixB(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

func suffixNounB(w []byte) bool {
	for _, s := range nounSuffixes {
		if hasSuffixB(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

func strip(tok string) string {
	return strings.TrimFunc(tok, func(r rune) bool {
		return !unicode.IsLetter(r)
	})
}

func wordSet(words string) map[string]bool {
	set := map[string]bool{}
	for _, w := range strings.Fields(words) {
		set[w] = true
	}
	return set
}
