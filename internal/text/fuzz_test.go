package text

import (
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// sentenceOpts mirrors the extractor's sentence-boundary cleaning: strip
// tweet entities, keep punctuation so sentence terminators survive.
func sentenceOpts() CleanOptions {
	return CleanOptions{
		RemoveURLs:          true,
		RemoveMentions:      true,
		RemoveHashtags:      true,
		RemoveAbbreviations: true,
		CondenseWhitespace:  true,
	}
}

// nastyInputs is the shared seed corpus: emoji, RTL scripts, lone
// surrogates and other invalid UTF-8, huge elongations, case oddities the
// ASCII fast paths must not mishandle, and tweet-entity edge shapes.
func nastyInputs() []string {
	return []string{
		"",
		" ",
		"RT @user: OMG this is SOOO bad!! check http://t.co/x #fail",
		"plain words only",
		"😀😀😀 emoji 🎉 tweet 🔥🔥",
		"مرحبا بالعالم هذا نص عربي",
		"שלום עולם ‏RTL‏ mixed",
		"\xed\xa0\x80 lone surrogate \xed\xbf\xbf",
		"\xff\xfe invalid \x80\x81 bytes",
		"a" + strings.Repeat("o", 10000) + "!!!",
		strings.Repeat("so ", 5000),
		"I İstanbul KELVIN KK sign ſtrange ſ",
		"DM rt RT Rt rT mt HT cc prt TMB oh.fb ff!",
		"@ # @mention #hashtag @a #b",
		"www.example.com WWW.SHOUT.COM HtTpS://x.y t.co/abc",
		"don't can't 'quoted' ''double'' '''",
		"a.b.c. d! e? f\ng",
		"one. two. three. 4. 5!",
		"x nbsp ls ps separators",
		"ǅungla titlecase ǅ Ǆ ǆ",
		"ÀÉÎÕÜ áéíóú ÄÖÜ SS ß",
		"12345 !@#$% ^&*() _+-=",
		"mixed123text 1a2b3c a1'2b",
		"İ ı K Å ſ",
		"ends.with.abbrev rt. DM! cc?",
		"#tag.with.dots @user.name www.a.b!c",
	}
}

// FuzzClean asserts the legacy cleaner never panics and always returns
// valid UTF-8, under every option profile the pipeline uses.
func FuzzClean(f *testing.F) {
	for _, s := range nastyInputs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, opts := range []CleanOptions{
			DefaultCleanOptions(),
			sentenceOpts(),
			{},
			{RemoveNumbers: true, RemovePunctuation: true},
		} {
			out := Clean(s, opts)
			if !utf8.ValidString(out) {
				t.Fatalf("Clean(%q, %+v) produced invalid UTF-8: %q", s, opts, out)
			}
		}
		for _, sent := range SplitSentences(s) {
			if !utf8.ValidString(sent) {
				t.Fatalf("SplitSentences(%q) produced invalid UTF-8", s)
			}
		}
	})
}

// FuzzTokenizeFast is the scanner's equivalence oracle: on arbitrary input
// the single-pass Scan must reproduce the legacy Clean+Tokenize token
// stream, the legacy raw-text counts, and the legacy sentence count — and
// never panic or emit invalid UTF-8.
func FuzzTokenizeFast(f *testing.F) {
	for _, s := range nastyInputs() {
		f.Add(s)
	}
	var cleanOpts = DefaultCleanOptions()
	f.Fuzz(func(t *testing.T, s string) {
		var sc Scratch
		sc.Scan(s)

		want := Tokenize(Clean(s, cleanOpts))
		if got := sc.Words(); got != len(want) {
			t.Fatalf("Scan(%q): %d words, legacy %d (%q)", s, got, len(want), want)
		}
		letterSum := 0
		for i, w := range want {
			gotClean := string(sc.Clean(i))
			if gotClean != w {
				t.Fatalf("Scan(%q): word %d = %q, legacy %q", s, i, gotClean, w)
			}
			if !utf8.ValidString(gotClean) {
				t.Fatalf("Scan(%q): word %d invalid UTF-8", s, i)
			}
			gotLower := string(sc.Lower(i))
			if wantLower := strings.ToLower(w); gotLower != wantLower {
				t.Fatalf("Scan(%q): lower %d = %q, legacy %q", s, i, gotLower, wantLower)
			}
			letters, uppers, elongated := sc.WordInfo(i)
			_ = uppers
			wantLetters := 0
			for _, r := range w {
				if unicode.IsLetter(r) {
					wantLetters++
				}
			}
			if letters != wantLetters {
				t.Fatalf("Scan(%q): word %d letters = %d, legacy %d", s, i, letters, wantLetters)
			}
			if elongated != HasElongation(w) {
				t.Fatalf("Scan(%q): word %d elongated = %v, legacy %v", s, i, elongated, HasElongation(w))
			}
			letterSum += wantLetters
		}
		if sc.Stats.LetterSum != letterSum {
			t.Fatalf("Scan(%q): letter sum %d, legacy %d", s, sc.Stats.LetterSum, letterSum)
		}
		if got, want := sc.Stats.Hashtags, CountTokenKind(s, IsHashtagToken); got != want {
			t.Fatalf("Scan(%q): hashtags %d, legacy %d", s, got, want)
		}
		if got, want := sc.Stats.URLs, CountTokenKind(s, IsURLToken); got != want {
			t.Fatalf("Scan(%q): urls %d, legacy %d", s, got, want)
		}
		if got, want := sc.Stats.Mentions, CountTokenKind(s, IsMentionToken); got != want {
			t.Fatalf("Scan(%q): mentions %d, legacy %d", s, got, want)
		}
		if got, want := sc.Stats.UpperWords, CountUpperWords(s); got != want {
			t.Fatalf("Scan(%q): upper words %d, legacy %d", s, got, want)
		}
		if got, want := sc.Stats.Sentences, len(SplitSentences(Clean(s, sentenceOpts()))); got != want {
			t.Fatalf("Scan(%q): sentences %d, legacy %d", s, got, want)
		}
	})
}
