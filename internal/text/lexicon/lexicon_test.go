package lexicon

import "testing"

func TestSeedSize(t *testing.T) {
	words := SwearWords()
	if len(words) != SeedSwearCount {
		t.Fatalf("seed list has %d words, want %d", len(words), SeedSwearCount)
	}
}

func TestSeedNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range SwearWords() {
		if seen[w] {
			t.Fatalf("duplicate seed word %q", w)
		}
		seen[w] = true
	}
}

func TestIsSwear(t *testing.T) {
	cases := []struct {
		w    string
		want bool
	}{
		{"fuck", true},
		{"FUCK", true}, // case-insensitive
		{"bitch", true},
		{"hello", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsSwear(c.w); got != c.want {
			t.Errorf("IsSwear(%q) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestCountSwears(t *testing.T) {
	n := CountSwears([]string{"you", "fucking", "idiot", "shit"})
	// "fucking" and "shit" are seeds; "idiot" is insult vocabulary but not
	// in the curse list (mirrors noswearing.com scope).
	if n < 2 {
		t.Fatalf("CountSwears = %d, want >= 2", n)
	}
}

func TestSwearWordsReturnsCopy(t *testing.T) {
	a := SwearWords()
	a[0] = "changed"
	b := SwearWords()
	if b[0] == "changed" {
		t.Fatalf("SwearWords exposes internal slice")
	}
}

func TestVariantsPresent(t *testing.T) {
	// The seed list must include obfuscation variants beyond the base list,
	// otherwise the 347 target could not have been met.
	base := map[string]bool{}
	for _, w := range baseSwears {
		base[w] = true
	}
	variants := 0
	for _, w := range SwearWords() {
		if !base[w] {
			variants++
		}
	}
	if variants == 0 {
		t.Fatalf("no obfuscation variants found in seed list")
	}
}
