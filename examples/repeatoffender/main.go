// Repeatoffender: the user-state layer catching users (not tweets)
// red-handed. A small pool of habitual offenders posts aggressive
// tweets inside a much larger crowd of normal traffic; the pipeline's
// sharded userstate store accumulates each author's sliding session
// window, offense history, and EWMA aggression score, and emits:
//
//   - session verdicts — repetitive hostility inside one sliding window,
//   - escalation verdicts — a user trending toward aggression across
//     sessions (score high over a span longer than a window, recent
//     verdicts not decaying),
//   - suspension recommendations — repeated confident alerts.
//
// The store is memory-bounded: with a 2,000-record cap and 50,000
// distinct drive-by users, CLOCK eviction retires one-off accounts while
// the habitual offenders (always recently referenced) survive. At the
// end, the whole store round-trips through a checkpoint and the restored
// copy answers the same per-user queries.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"redhanded"
	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

func main() {
	log.SetFlags(0)

	opts := redhanded.DefaultOptions()
	opts.Scheme = redhanded.TwoClass
	opts.AlertThreshold = 0.7
	opts.Users = userstate.Config{
		MaxUsers: 2000, // bounded: 50k distinct users will stream through
		Session: userstate.SessionConfig{
			Window: time.Hour, MinTweets: 4, AggressiveShare: 0.7,
		},
		Escalation: userstate.EscalationConfig{
			Threshold: 0.55, MinTweets: 10, MinSpan: 2 * time.Hour,
		},
	}
	p := redhanded.NewPipeline(opts)
	p.Alerter().SuspendAfter = 5

	// Warm the model with labeled history.
	warmup := redhanded.GenerateAggression(redhanded.AggressionConfig{
		Seed: 42, Days: 10, NormalCount: 5000, AbusiveCount: 2500, HatefulCount: 450,
	})
	p.ProcessAll(warmup)
	fmt.Printf("model warmed up: F1=%.3f over %d labeled tweets\n\n", p.Summary().F1, p.Summary().Instances)

	// Live traffic: 8 habitual offenders inside 50k drive-by accounts.
	// Offenders post a burst of aggressive tweets every few minutes for a
	// simulated day; everyone else posts once and disappears.
	sessions, escalations := 0, 0
	p.SubscribeVerdicts(verdictPrinter{sessions: &sessions, escalations: &escalations})

	gen := twitterdata.NewGenerator(77, 10)
	base := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	drives := 0
	for i := 0; i < 60000; i++ {
		at := base.Add(time.Duration(i) * 1400 * time.Millisecond) // ~23 simulated hours
		var tw twitterdata.Tweet
		if i%8 == 0 { // offender burst slot
			tw = gen.Tweet(1+i%2, i%10) // abusive / hateful text
			id := fmt.Sprintf("offender%02d", (i/8)%8)
			tw.User.IDStr, tw.User.ScreenName = id, id
		} else {
			tw = gen.Tweet(0, i%10)
			drives++
			id := fmt.Sprintf("driveby%05d", drives)
			tw.User.IDStr, tw.User.ScreenName = id, id
		}
		tw.Label = "" // the pipeline sees live traffic unlabeled
		tw.CreatedAt = at.Format(twitterdata.TimeLayout)
		p.Process(&tw)
	}

	users := p.Users()
	capEv, ttlEv := users.Evictions()
	fmt.Printf("\n50k+ distinct users streamed; store holds %d records (cap 2000, %d cap / %d ttl evictions)\n",
		users.Len(), capEv, ttlEv)
	fmt.Printf("verdicts: %d sessions, %d escalations; suspensions recommended: %v\n",
		sessions, escalations, p.Alerter().SuspendedUsers())

	// The habitual offenders survived eviction; the drive-bys mostly did
	// not. GET /v1/users/{id} serves exactly this snapshot over HTTP.
	if snap, ok := users.Lookup("offender00"); ok {
		fmt.Printf("\noffender00: %d tweets (%.0f%% aggressive), score=%.2f, offenses=%d, suspended=%v, cadence=%.0fs\n",
			snap.Tweets, 100*float64(snap.Aggressive)/float64(snap.Tweets),
			snap.Score, snap.Offenses, snap.Suspended, snap.CadenceSeconds)
	}

	// Checkpoint the store and restore it into a fresh copy: the restored
	// state answers the same queries (the serving layer does this per
	// shard on graceful shutdown).
	var buf bytes.Buffer
	if err := users.Checkpoint(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored := userstate.New(opts.Users)
	if err := restored.Restore(&buf); err != nil {
		log.Fatal(err)
	}
	a, _ := users.Lookup("offender03")
	b, _ := restored.Lookup("offender03")
	fmt.Printf("\ncheckpoint: %d bytes; restored store tracks %d users; offender03 score %.4f == %.4f\n",
		size, restored.Len(), a.Score, b.Score)
}

// verdictPrinter shows the first few verdicts of each kind live.
type verdictPrinter struct{ sessions, escalations *int }

func (v verdictPrinter) HandleSession(s redhanded.SessionVerdict) {
	*v.sessions++
	if *v.sessions <= 3 {
		fmt.Printf("SESSION    @%-11s %d tweets, %.0f%% aggressive in window\n",
			s.ScreenName, s.Tweets, 100*s.AggressiveShare)
	}
}

func (v verdictPrinter) HandleEscalation(e redhanded.EscalationVerdict) {
	*v.escalations++
	if *v.escalations <= 3 {
		fmt.Printf("ESCALATION @%-11s score=%.2f over %d tweets since %s (%d session verdicts)\n",
			e.ScreenName, e.Score, e.Tweets, e.FirstSeen.Format("15:04"), e.Sessions)
	}
}
