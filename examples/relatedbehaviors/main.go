// Related behaviors: §V-F — the same streaming pipeline, retargeted with
// zero structural change at two other Twitter moderation tasks: sarcasm
// detection (Rajadesingan et al.) and racism/sexism detection (Waseem &
// Hovy). The streaming Hoeffding tree converges towards the batch scores
// the original papers report (93% accuracy, 74% F1).
package main

import (
	"fmt"
	"log"

	"redhanded"
	"redhanded/internal/experiments"
)

func main() {
	log.SetFlags(0)

	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.25 // ~15k sarcasm tweets, ~4k offensive tweets

	fmt.Println("sarcasm detection (61k-tweet dataset, 6.5k sarcastic):")
	sarcasm := experiments.RunSarcasm(cfg)
	printCurve(sarcasm)
	fmt.Printf("  -> final accuracy %.3f (batch-reported: %.2f)\n\n",
		sarcasm.Final, experiments.SarcasmReportedAccuracy)

	fmt.Println("offensive detection (16k-tweet dataset, 2k racist + 3k sexist):")
	offensive := experiments.RunOffensive(cfg)
	printCurve(offensive)
	fmt.Printf("  -> final weighted F1 %.3f (batch-reported: %.2f)\n\n",
		offensive.Final, experiments.OffensiveReportedF1)

	// The datasets themselves are plain labeled tweet streams, so any
	// public-API pipeline can consume them directly:
	opts := redhanded.DefaultOptions()
	opts.Scheme = redhanded.TwoClass
	_ = redhanded.NewPipeline(opts)
	fmt.Println("see examples/quickstart for driving a pipeline over these streams directly")
}

func printCurve(r experiments.RelatedResult) {
	step := len(r.Curve) / 6
	if step == 0 {
		step = 1
	}
	for i := step - 1; i < len(r.Curve); i += step {
		pt := r.Curve[i]
		fmt.Printf("  after %6d tweets: %s = %.3f\n", pt.Instances, r.Metric, pt.Value)
	}
}
