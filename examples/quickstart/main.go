// Quickstart: build the detection pipeline, stream labeled tweets through
// it, and watch the prequential metrics converge — the minimal end-to-end
// use of the public API.
package main

import (
	"fmt"
	"log"

	"redhanded"
)

func main() {
	log.SetFlags(0)

	// A reduced version of the paper's 86k-tweet dataset (10 days of
	// normal/abusive/hateful traffic).
	cfg := redhanded.DefaultAggressionConfig()
	cfg.NormalCount, cfg.AbusiveCount, cfg.HatefulCount = 6000, 3000, 550
	tweets := redhanded.GenerateAggression(cfg)

	// The paper's default configuration: Hoeffding Tree, 3 classes,
	// preprocessing + normalization + adaptive bag-of-words all on.
	opts := redhanded.DefaultOptions()
	p := redhanded.NewPipeline(opts)

	for i := range tweets {
		res := p.Process(&tweets[i])
		_ = res // per-tweet predictions are available here

		if n := i + 1; n%2000 == 0 {
			r := p.Summary()
			fmt.Printf("after %5d tweets: accuracy=%.3f F1=%.3f (BoW %d words)\n",
				n, r.Accuracy, r.F1, p.Extractor().BoW().Size())
		}
	}

	r := p.Summary()
	fmt.Println()
	fmt.Printf("final prequential metrics over %d labeled tweets:\n", r.Instances)
	fmt.Printf("  accuracy  %.4f\n", r.Accuracy)
	fmt.Printf("  precision %.4f\n", r.Precision)
	fmt.Printf("  recall    %.4f\n", r.Recall)
	fmt.Printf("  F1-score  %.4f\n", r.F1)
	fmt.Printf("alerts raised along the way: %d\n", p.Alerter().Raised())
}
