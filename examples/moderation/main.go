// Moderation: the alerting workflow the paper's §III-A describes — alerts
// stream to a moderator queue in real time, per-user offense histories
// accumulate, and repeat offenders are recommended for suspension. The
// labeling loop is closed with the boosted sampler: periodically, a
// prediction-boosted sample of unlabeled tweets is "annotated" and fed
// back to keep the model current. Session-level windows (the paper's §VI
// future work) aggregate repetitive hostility into per-user verdicts.
package main

import (
	"fmt"
	"log"
	"time"

	"redhanded"
	"redhanded/internal/core"
	"redhanded/internal/twitterdata"
)

func main() {
	log.SetFlags(0)

	opts := redhanded.DefaultOptions()
	opts.Scheme = redhanded.TwoClass
	opts.AlertThreshold = 0.7 // only confident alerts reach moderators
	p := redhanded.NewPipeline(opts)
	p.Alerter().SuspendAfter = 3

	// Moderator queue: the first few alerts are shown live.
	shown := 0
	p.Alerter().Subscribe(redhanded.AlertSinkFunc(func(a redhanded.Alert) {
		if shown < 8 {
			fmt.Printf("ALERT  %-10s conf=%.2f  @%-10s %q\n",
				a.Label, a.Confidence, a.ScreenName, clip(a.Text, 56))
			shown++
		}
	}))

	// Warm the model up with labeled history, then moderate live
	// (unlabeled) traffic.
	warmup := redhanded.GenerateAggression(redhanded.AggressionConfig{
		Seed: 42, Days: 10, NormalCount: 5000, AbusiveCount: 2500, HatefulCount: 450,
	})
	p.ProcessAll(warmup)
	fmt.Printf("model warmed up: F1=%.3f over %d labeled tweets\n\n",
		p.Summary().F1, p.Summary().Instances)

	// Live traffic: the generator doubles as ground truth for the
	// simulated annotators. A small pool of habitual offenders posts the
	// aggressive tweets, so per-user histories accumulate. A session
	// tracker watches for repetitive hostility within sliding windows.
	sessions := core.NewSessionTracker(core.SessionConfig{
		Window: 24 * time.Hour, MinTweets: 4, AggressiveShare: 0.7,
	})
	gen := twitterdata.NewGenerator(77, 10)
	var live []twitterdata.Tweet
	classes := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 2} // ~30% aggressive
	sessionVerdicts := 0
	for i := 0; i < 6000; i++ {
		class := classes[i%len(classes)]
		tw := gen.Tweet(class, i%10)
		if class != 0 {
			offender := fmt.Sprintf("offender%02d", i%40)
			tw.User.IDStr = offender
			tw.User.ScreenName = offender
		}
		truth := tw
		truth.Label = []string{"normal", "abusive", "hateful"}[class]
		live = append(live, truth)
		tw.Label = "" // the pipeline sees it unlabeled
		res := p.Process(&tw)
		if v := sessions.Observe(&tw, res.Predicted > 0, res.Confidence); v != nil {
			sessionVerdicts++
			if sessionVerdicts <= 3 {
				fmt.Printf("SESSION @%s: %d tweets, %.0f%% aggressive in window\n",
					v.ScreenName, v.Tweets, 100*v.AggressiveShare)
			}
		}
	}

	fmt.Printf("\nlive traffic: %d tweets, %d alerts\n", 6000, p.Alerter().Raised())
	fmt.Printf("users recommended for suspension (>= 3 offenses): %d\n",
		len(p.Alerter().SuspendedUsers()))
	fmt.Printf("aggressive session verdicts (windowed): %d\n", sessionVerdicts)

	dist := p.PredictedDistribution()
	fmt.Printf("predicted class distribution over live traffic: normal=%.2f aggressive=%.2f\n",
		dist[0], dist[1])

	// Labeling round: drain the boosted sample, annotate, retrain.
	sample := p.Sampler().Drain()
	annotator := core.NewAnnotator(live, 0.02, 99) // 2% label noise
	newlyLabeled := annotator.Annotate(sample)
	aggressive := 0
	for i := range newlyLabeled {
		if newlyLabeled[i].Label != "normal" {
			aggressive++
		}
		p.Process(&newlyLabeled[i])
	}
	fmt.Printf("\nlabeling round: %d sampled tweets annotated (%.0f%% aggressive thanks to boosting)\n",
		len(newlyLabeled), 100*float64(aggressive)/float64(len(newlyLabeled)))
	fmt.Printf("updated model F1: %.3f\n", p.Summary().F1)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
