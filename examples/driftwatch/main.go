// Driftwatch: the concept-drift machinery in action. The aggressive
// vocabulary shifts over the collection days (new slang replaces old
// swears), and a frozen model decays while the adaptive pipeline keeps
// up. A fading-factor evaluator (exponential forgetting) shows *current*
// health where the cumulative metric lags, and ADWIN watches the error
// stream for change points.
package main

import (
	"fmt"
	"log"
	"time"

	"redhanded"
	"redhanded/internal/eval"
	"redhanded/internal/stream"
)

func main() {
	log.SetFlags(0)

	// 10 days of drifting traffic.
	tweets := redhanded.GenerateAggression(redhanded.AggressionConfig{
		Seed: 21, Days: 10, NormalCount: 10000, AbusiveCount: 5000, HatefulCount: 900,
	})

	opts := redhanded.DefaultOptions()
	opts.Scheme = redhanded.TwoClass
	// User-state knobs: bound the per-user store (CLOCK eviction beyond
	// 5k records, 48h idle TTL) and watch for users escalating across
	// sessions while the vocabulary drifts underneath the model.
	opts.Users.MaxUsers = 5000
	opts.Users.TTL = 48 * time.Hour
	opts.Users.Escalation.Threshold = 0.6
	adaptive := redhanded.NewPipeline(opts)

	frozenOpts := opts
	frozenOpts.AdaptiveBoW = false // frozen vocabulary: ad=OFF
	frozen := redhanded.NewPipeline(frozenOpts)

	fadeAdaptive := eval.NewFadingPrequential(2, 0.999)
	fadeFrozen := eval.NewFadingPrequential(2, 0.999)
	errWatch := stream.NewADWIN(0.002)

	day := -1
	for i := range tweets {
		tw := tweets[i]
		if tw.Day != day {
			day = tw.Day
			if day > 0 {
				fmt.Printf("day %2d  adaptive(faded F1)=%.3f  frozen(faded F1)=%.3f  drifts seen=%d\n",
					day, fadeAdaptive.WeightedF1(), fadeFrozen.WeightedF1(), errWatch.Drifts())
			}
		}
		ra := adaptive.Process(&tw)
		rf := frozen.Process(&tw)
		if ra.Tested {
			fadeAdaptive.Record(ra.Instance.Label, ra.Predicted)
			fadeFrozen.Record(rf.Instance.Label, rf.Predicted)
			errBit := 0.0
			if rf.Predicted != rf.Instance.Label {
				errBit = 1
			}
			errWatch.Add(errBit)
		}
	}

	fmt.Println()
	fmt.Printf("cumulative F1: adaptive=%.3f frozen=%.3f\n",
		adaptive.Summary().F1, frozen.Summary().F1)
	fmt.Printf("faded (recent) F1: adaptive=%.3f frozen=%.3f\n",
		fadeAdaptive.WeightedF1(), fadeFrozen.WeightedF1())
	fmt.Printf("adaptive BoW grew from 347 to %d words; frozen stayed at %d\n",
		adaptive.Extractor().BoW().Size(), frozen.Extractor().BoW().Size())
	fmt.Printf("ADWIN change points in the frozen model's error stream: %d\n", errWatch.Drifts())
	users := adaptive.Users()
	capEv, ttlEv := users.Evictions()
	fmt.Printf("user state: %d active users (cap 5000; %d cap / %d ttl evictions), %d escalation verdicts\n",
		users.Len(), capEv, ttlEv, users.Escalations())
}
