// Cluster: the fault-tolerant SparkCluster setup of §V-E as a
// walkthrough. Three executor "nodes" on loopback TCP serve a driver
// streaming the synthetic aggression dataset; one node is taken down
// mid-run, the driver fails its work over to the survivors, and a
// replacement is brought up on the same address for the driver to
// reconnect and resync (full model + vocabulary handshake). Run real
// nodes with cmd/rhexecutor and point cmd/rhdriver at them for the same
// behavior across machines.
//
// Pass -model arf to distribute the paper's best model, the Adaptive
// Random Forest: member trees broadcast with per-member hash elision and
// the drift/warning/replacement counters appear in the final report.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"redhanded"
)

func main() {
	log.SetFlags(0)
	model := flag.String("model", "ht", "streaming model: ht, arf, slr")
	flag.Parse()

	// Three executor nodes (2 task slots each, like small workers).
	var exs [3]*redhanded.Executor
	var addrs []string
	for i := range exs {
		ex, err := redhanded.StartExecutor("127.0.0.1:0", 2)
		if err != nil {
			log.Fatal(err)
		}
		defer ex.Close()
		exs[i] = ex
		addrs = append(addrs, ex.Addr())
	}
	fmt.Printf("cluster: %v\n", addrs)

	data := redhanded.GenerateAggression(redhanded.AggressionConfig{
		Seed: 7, Days: 10, NormalCount: 12000, AbusiveCount: 6000, HatefulCount: 1200,
	})

	// Mid-run, node 1 leaves the cluster (drained shutdown — in-flight
	// work finishes, later batches fail over to the survivors), and a
	// replacement comes up on the same address for the driver's reconnect
	// loop to find and resync from scratch. The swap is published through
	// a channel so the final report reads it race-free.
	swapped := make(chan *redhanded.Executor, 1)
	go func() {
		defer close(swapped)
		time.Sleep(150 * time.Millisecond)
		addr := exs[1].Addr()
		fmt.Printf("taking down executor %s mid-run...\n", addr)
		exs[1].Close()
		time.Sleep(100 * time.Millisecond)
		repl, err := redhanded.StartExecutor(addr, 2)
		if err != nil {
			fmt.Printf("replacement failed to bind: %v\n", err)
			return
		}
		fmt.Printf("replacement executor up on %s\n", addr)
		swapped <- repl
	}()

	opts := redhanded.DefaultOptions()
	switch *model {
	case "ht":
		opts.Model = redhanded.ModelHT
	case "arf":
		opts.Model = redhanded.ModelARF
	case "slr":
		opts.Model = redhanded.ModelSLR
	default:
		log.Fatalf("unknown model %q (use ht, arf, or slr)", *model)
	}

	p := redhanded.NewPipeline(opts)
	stats, err := redhanded.RunCluster(p, redhanded.NewSliceSource(data), redhanded.ClusterConfig{
		Executors:        addrs,
		BatchSize:        500,
		TasksPerExecutor: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if repl, ok := <-swapped; ok {
		exs[1] = repl
		defer repl.Close()
	}

	rep := p.Summary()
	fmt.Printf("\nprocessed %d tweets in %.2fs (%.0f tweets/s) over %d batches\n",
		stats.Processed, stats.Duration.Seconds(), stats.Throughput(), stats.Batches)
	fmt.Printf("broadcast %0.1f KB (delta protocol), data %.1f KB\n",
		float64(stats.BroadcastBytes)/1024, float64(stats.DataBytes)/1024)
	fmt.Printf("resilience: %d failovers, %d resyncs, %d reconnects\n",
		stats.Failovers, stats.Resyncs, stats.Reconnects)
	if opts.Model == redhanded.ModelARF {
		fmt.Printf("drift: %d warnings, %d drifts, %d tree replacements\n",
			stats.Warnings, stats.Drifts, stats.TreeReplacements)
	}
	fmt.Printf("prequential: accuracy=%.4f F1=%.4f over %d labeled tweets\n",
		rep.Accuracy, rep.F1, rep.Instances)
	for i, ex := range exs {
		fmt.Printf("executor %d (%s): %d shares served, vocab %d words\n",
			i, ex.Addr(), ex.Handled(), ex.LastVocabSize())
	}
}
