// Serving: run the sharded HTTP serving subsystem in-process, post tweets
// to it, and consume the live alert stream over Server-Sent Events — the
// deployment shape of the paper's real-time story.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"redhanded"
)

func main() {
	log.SetFlags(0)

	// A 4-shard server over the paper-default pipeline; tweets are routed
	// to shards by hash(userID), so each user's state stays on one shard.
	opts := redhanded.DefaultServerOptions()
	opts.Shards = 4
	opts.Pipeline.AlertThreshold = 0.4
	srv := redhanded.NewServer(opts)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s with %d shards\n\n", base, srv.Shards())

	// Subscribe to the SSE alert stream before traffic arrives.
	alerts := make(chan string, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go streamAlerts(ctx, base, alerts)

	// Stream a labeled slice of the synthetic dataset through /v1/ingest:
	// the shards train incrementally and start raising alerts on the
	// aggressive minority as their models converge.
	cfg := redhanded.DefaultAggressionConfig()
	cfg.NormalCount, cfg.AbusiveCount, cfg.HatefulCount = 4000, 2000, 400
	tweets := redhanded.GenerateAggression(cfg)
	const batch = 500
	for off := 0; off < len(tweets); {
		end := min(off+batch, len(tweets))
		var body bytes.Buffer
		for i := off; i < end; i++ {
			blob, err := tweets[i].Marshal()
			if err != nil {
				log.Fatal(err)
			}
			body.Write(blob)
			body.WriteByte('\n')
		}
		resp, err := http.Post(base+"/v1/ingest", "application/x-ndjson", &body)
		if err != nil {
			log.Fatal(err)
		}
		var ir struct {
			Accepted  int `json:"accepted"`
			Malformed int `json:"malformed"`
		}
		json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			off = end
		case http.StatusTooManyRequests:
			// Backpressure: Accepted+Malformed is a prefix of the batch,
			// so advance past it and resend the rejected suffix after the
			// advertised Retry-After.
			off += ir.Accepted + ir.Malformed
			wait := time.Second
			if n, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && n > 0 {
				wait = time.Duration(n) * time.Second
			}
			time.Sleep(wait)
		default:
			log.Fatalf("ingest: unexpected status %s", resp.Status)
		}
	}

	// One synchronous classification on the hot path.
	blob, _ := tweets[len(tweets)-1].Marshal()
	resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	var cls struct {
		Predicted  string  `json:"predicted"`
		Confidence float64 `json:"confidence"`
		Shard      int     `json:"shard"`
	}
	json.NewDecoder(resp.Body).Decode(&cls)
	resp.Body.Close()
	fmt.Printf("synchronous classify: %q (conf %.2f) on shard %d\n\n", cls.Predicted, cls.Confidence, cls.Shard)

	// Print the first few live alerts from the SSE stream.
	fmt.Println("live alerts from GET /v1/alerts:")
	seen := 0
	timeout := time.After(5 * time.Second)
	for seen < 5 {
		select {
		case a := <-alerts:
			fmt.Printf("  %s\n", a)
			seen++
		case <-timeout:
			fmt.Println("  (timed out waiting for more alerts)")
			seen = 5
		}
	}

	// Server-side view: per-shard prequential metrics.
	var stats redhanded.ServerStats
	resp2, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	json.NewDecoder(resp2.Body).Decode(&stats)
	resp2.Body.Close()
	fmt.Printf("\nprocessed %d tweets, %d alerts raised, per shard:\n", stats.Processed, stats.AlertsRaised)
	for _, sh := range stats.PerShard {
		fmt.Printf("  shard %d: %5d tweets, accuracy %.3f, F1 %.3f\n",
			sh.Shard, sh.Processed, sh.Report.Accuracy, sh.Report.F1)
	}

	// Close the SSE subscription before Shutdown: graceful shutdown waits
	// for in-flight requests, and the alert stream is one until canceled.
	cancel()
	httpSrv.Shutdown(context.Background())
	srv.Drain(context.Background())
}

// streamAlerts consumes the SSE endpoint, forwarding one line per alert.
func streamAlerts(ctx context.Context, base string, out chan<- string) {
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/v1/alerts", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			ScreenName string  `json:"screen_name"`
			Label      string  `json:"label"`
			Confidence float64 `json:"confidence"`
			Text       string  `json:"text"`
		}
		if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) != nil {
			continue
		}
		text := ev.Text
		if len(text) > 40 {
			text = text[:40] + "..."
		}
		select {
		case out <- fmt.Sprintf("%-8s conf=%.2f @%s %q", ev.Label, ev.Confidence, ev.ScreenName, text):
		case <-ctx.Done():
			return
		}
	}
}
