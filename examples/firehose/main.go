// Firehose: the scalability story of §V-E. The same pipeline runs on the
// four execution substrates — sequential (MOA-style), single-threaded
// micro-batch (SparkSingle), multi-worker micro-batch (SparkLocal), and a
// 3-node TCP cluster (SparkCluster) — over a stream of unlabeled tweets
// intermixed with the labeled dataset, and reports each setup's
// throughput against the reported Twitter Firehose rate (~9k tweets/s).
package main

import (
	"fmt"
	"log"
	"runtime"

	"redhanded"
	"redhanded/internal/engine"
	"redhanded/internal/twitterdata"
)

const (
	totalTweets = 200000
	firehose    = 9000.0 // reported Twitter Firehose tweets/sec
)

func newSource() redhanded.Source {
	labeled := redhanded.GenerateAggression(redhanded.AggressionConfig{
		Seed: 42, Days: 10, NormalCount: 5400, AbusiveCount: 2700, HatefulCount: 500,
	})
	return engine.NewMixedSource(labeled, twitterdata.NewUnlabeledSource(123, 10), totalTweets)
}

func newPipeline() *redhanded.Pipeline {
	opts := redhanded.DefaultOptions()
	opts.SampleStep = 0 // pure throughput run
	return redhanded.NewPipeline(opts)
}

func report(name string, stats redhanded.EngineStats, f1 float64) {
	ratio := stats.Throughput() / firehose
	fmt.Printf("%-13s %8d tweets in %7.2fs -> %8.0f tweets/s (%.1fx Firehose)  F1=%.3f\n",
		name, stats.Processed, stats.Duration.Seconds(), stats.Throughput(), ratio, f1)
}

func main() {
	log.SetFlags(0)
	cores := runtime.NumCPU()
	if cores > 8 {
		cores = 8 // one "commodity machine" of the paper
	}
	fmt.Printf("streaming %d tweets through each execution substrate...\n\n", totalTweets)

	p := newPipeline()
	stats := redhanded.RunSequential(p, newSource())
	report("MOA", stats, p.Summary().F1)

	p = newPipeline()
	stats, err := redhanded.RunMicroBatch(p, newSource(), redhanded.SparkSingleConfig())
	if err != nil {
		log.Fatal(err)
	}
	report("SparkSingle", stats, p.Summary().F1)

	p = newPipeline()
	stats, err = redhanded.RunMicroBatch(p, newSource(), redhanded.SparkLocalConfig(cores))
	if err != nil {
		log.Fatal(err)
	}
	report("SparkLocal", stats, p.Summary().F1)

	// Three executor "nodes" on loopback TCP — run cmd/rhexecutor on real
	// machines for a genuine cluster.
	var addrs []string
	for i := 0; i < 3; i++ {
		ex, err := redhanded.StartExecutor("127.0.0.1:0", cores)
		if err != nil {
			log.Fatal(err)
		}
		defer ex.Close()
		addrs = append(addrs, ex.Addr())
	}
	p = newPipeline()
	stats, err = redhanded.RunCluster(p, newSource(), redhanded.ClusterConfig{
		Executors: addrs, BatchSize: 3000, TasksPerExecutor: cores,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("SparkCluster", stats, p.Summary().F1)

	fmt.Printf("\nreported Twitter Firehose rate: %.0f tweets/s\n", firehose)
}
