// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs its experiment at a reduced scale so the whole
// suite completes in minutes; `cmd/benchrunner -scale 1` reproduces the
// paper-scale numbers recorded in EXPERIMENTS.md.
package redhanded_test

import (
	"io"
	"testing"

	"redhanded"
	"redhanded/internal/experiments"
)

// benchConfig returns the reduced-scale experiment configuration used by
// the benchmark suite.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.05
	cfg.TweetCounts = []int64{10000}
	cfg.ClusterExecutors = 3
	cfg.ClusterWorkers = 4
	return cfg
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkFeaturePathProcess measures the full per-tweet serving hot
// path — extract (single-pass fast path), normalize, predict, train/alert
// — end to end through the sequential pipeline.
func BenchmarkFeaturePathProcess(b *testing.B) {
	cfg := redhanded.DefaultAggressionConfig()
	cfg.NormalCount, cfg.AbusiveCount, cfg.HatefulCount = 1300, 500, 200
	tweets := redhanded.GenerateAggression(cfg)
	opts := redhanded.DefaultOptions()
	opts.SampleStep = 0
	p := redhanded.NewPipeline(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(&tweets[i%len(tweets)])
	}
}

// BenchmarkTable1GridSearch regenerates Table I (hyperparameter tuning).
func BenchmarkTable1GridSearch(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2KeyMetrics regenerates Table II (accuracy/precision/
// recall/F1 for HT, ARF, SLR on the 3- and 2-class problems).
func BenchmarkTable2KeyMetrics(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig4FeaturePDFs regenerates Fig. 4 (per-class feature
// distributions).
func BenchmarkFig4FeaturePDFs(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5GiniImportance regenerates Fig. 5 (feature importances).
func BenchmarkFig5GiniImportance(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Preprocessing regenerates Fig. 6 (preprocessing ON/OFF).
func BenchmarkFig6Preprocessing(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7NormalizationHT regenerates Fig. 7 (normalization, HT).
func BenchmarkFig7NormalizationHT(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8NormalizationSLR regenerates Fig. 8 (normalization, SLR).
func BenchmarkFig8NormalizationSLR(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9AdaptiveBoW regenerates Fig. 9 (adaptive BoW ON/OFF).
func BenchmarkFig9AdaptiveBoW(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10BoWGrowth regenerates Fig. 10 (BoW size over the stream).
func BenchmarkFig10BoWGrowth(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Streaming3Class regenerates Fig. 11 (HT/ARF/SLR, c=3).
func BenchmarkFig11Streaming3Class(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12Streaming2Class regenerates Fig. 12 (HT/ARF/SLR, c=2).
func BenchmarkFig12Streaming2Class(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13StreamVsBatch3 regenerates Fig. 13 (HT vs DT, c=3).
func BenchmarkFig13StreamVsBatch3(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14StreamVsBatch2 regenerates Fig. 14 (HT vs DT, c=2).
func BenchmarkFig14StreamVsBatch2(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15ExecutionTime regenerates Fig. 15 (execution time of MOA,
// SparkSingle, SparkLocal, SparkCluster).
func BenchmarkFig15ExecutionTime(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16Throughput regenerates Fig. 16 (throughput per system).
func BenchmarkFig16Throughput(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17RelatedBehaviors regenerates Fig. 17 (sarcasm and
// racism/sexism detection).
func BenchmarkFig17RelatedBehaviors(b *testing.B) { benchExperiment(b, "fig17") }
