// Command rhdriver runs the cluster driver: it streams a JSONL tweet file
// through the detection pipeline, distributing the micro-batch work across
// rhexecutor nodes.
//
// Usage:
//
//	rhexecutor -addr 127.0.0.1:7701 &
//	rhexecutor -addr 127.0.0.1:7702 &
//	datagen -dataset aggression -scale 0.2 -out tweets.jsonl
//	rhdriver -executors 127.0.0.1:7701,127.0.0.1:7702 -in tweets.jsonl
//	rhdriver -executors 127.0.0.1:7701,127.0.0.1:7702 -model arf -in tweets.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/engine"
	"redhanded/internal/twitterdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rhdriver: ")
	var (
		in        = flag.String("in", "-", "input JSONL path (- for stdin)")
		executors = flag.String("executors", "", "comma-separated executor addresses")
		classes   = flag.Int("classes", 3, "class scheme: 2 or 3")
		model     = flag.String("model", "ht", "streaming model: ht, arf, slr")
		batch     = flag.Int("batch", 3000, "micro-batch size")
		tasks     = flag.Int("tasks", 8, "parallel tasks per executor")
		rate      = flag.Float64("rate", 0, "simulated arrival rate in tweets/sec (0 = as fast as possible)")
		attempts  = flag.Int("reconnect-attempts", 5, "reconnect attempts before abandoning a dead executor")
		backoff   = flag.Duration("reconnect-backoff", 50*time.Millisecond, "initial reconnect backoff (doubles per attempt)")
		downWait  = flag.Duration("alldown-wait", 5*time.Second, "how long to wait for a reconnect when every executor is down")
		noDelta   = flag.Bool("no-delta", false, "re-broadcast the full model/vocab every batch (v1 wire behavior)")
		noPipe    = flag.Bool("no-pipeline", false, "disable next-batch data presend")
	)
	flag.Parse()
	if *executors == "" {
		log.Fatal("need -executors host:port[,host:port...]")
	}

	opts := core.DefaultOptions()
	switch *model {
	case "ht":
		opts.Model = core.ModelHT
	case "arf":
		opts.Model = core.ModelARF
	case "slr":
		opts.Model = core.ModelSLR
	default:
		log.Fatalf("unknown model %q (use ht, arf, or slr)", *model)
	}
	if *classes == 2 {
		opts.Scheme = core.TwoClass
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var src engine.Source = engine.NewReaderSource(twitterdata.NewReader(r))
	if *rate > 0 {
		src = engine.NewRateLimitedSource(src, *rate)
	}

	p := core.NewPipeline(opts)
	stats, err := engine.RunCluster(p, src, engine.ClusterConfig{
		Executors:        strings.Split(*executors, ","),
		BatchSize:        *batch,
		TasksPerExecutor: *tasks,
		MaxConnAttempts:  *attempts,
		ReconnectBackoff: *backoff,
		AllDownWait:      *downWait,
		DisableDelta:     *noDelta,
		DisablePipeline:  *noPipe,
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := p.Summary()
	fmt.Printf("processed %d tweets in %.2fs (%.0f tweets/s) over %d batches\n",
		stats.Processed, stats.Duration.Seconds(), stats.Throughput(), stats.Batches)
	fmt.Printf("batch latency: mean %s, max %s\n", stats.MeanBatchLatency, stats.MaxBatchLatency)
	fmt.Printf("broadcast: %.1f KB total (%.2f KB/batch), data: %.1f KB\n",
		float64(stats.BroadcastBytes)/1024, float64(stats.BroadcastBytes)/1024/float64(max(stats.Batches, 1)),
		float64(stats.DataBytes)/1024)
	fmt.Printf("resilience: %d failovers, %d resyncs, %d reconnects\n",
		stats.Failovers, stats.Resyncs, stats.Reconnects)
	if opts.Model == core.ModelARF {
		fmt.Printf("drift: %d warnings, %d drifts, %d tree replacements\n",
			stats.Warnings, stats.Drifts, stats.TreeReplacements)
	}
	fmt.Printf("alerts raised: %d\n", p.Alerter().Raised())
	fmt.Printf("user state: %d active users (%d evicted), %d session verdicts, %d escalations\n",
		stats.ActiveUsers, stats.UserEvictions,
		p.Users().SessionVerdicts(), p.Users().Escalations())
	if rep.Instances > 0 {
		fmt.Printf("prequential: accuracy=%.4f precision=%.4f recall=%.4f F1=%.4f\n",
			rep.Accuracy, rep.Precision, rep.Recall, rep.F1)
	}
}
