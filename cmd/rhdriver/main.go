// Command rhdriver runs the cluster driver: it streams a JSONL tweet file
// through the detection pipeline, distributing the micro-batch work across
// rhexecutor nodes.
//
// Usage:
//
//	rhexecutor -addr 127.0.0.1:7701 &
//	rhexecutor -addr 127.0.0.1:7702 &
//	datagen -dataset aggression -scale 0.2 -out tweets.jsonl
//	rhdriver -executors 127.0.0.1:7701,127.0.0.1:7702 -in tweets.jsonl
//	rhdriver -executors 127.0.0.1:7701,127.0.0.1:7702 -model arf -in tweets.jsonl
//	rhdriver -executors 127.0.0.1:7701 -in tweets.jsonl -trace -debug-addr 127.0.0.1:6061
//
// With -trace each micro-batch gets a driver-side span (queue, executor
// round-trip, executor compute as echoed over the wire, merge) served from
// the -debug-addr listener's /v1/trace endpoints alongside net/http/pprof,
// and a per-stage quantile table is printed with the run summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/engine"
	"redhanded/internal/metrics"
	"redhanded/internal/obs"
	"redhanded/internal/twitterdata"
)

func main() {
	var (
		in        = flag.String("in", "-", "input JSONL path (- for stdin)")
		executors = flag.String("executors", "", "comma-separated executor addresses")
		classes   = flag.Int("classes", 3, "class scheme: 2 or 3")
		model     = flag.String("model", "ht", "streaming model: ht, arf, slr")
		batch     = flag.Int("batch", 3000, "micro-batch size")
		tasks     = flag.Int("tasks", 8, "parallel tasks per executor")
		rate      = flag.Float64("rate", 0, "simulated arrival rate in tweets/sec (0 = as fast as possible)")
		attempts  = flag.Int("reconnect-attempts", 5, "reconnect attempts before abandoning a dead executor")
		backoff   = flag.Duration("reconnect-backoff", 50*time.Millisecond, "initial reconnect backoff (doubles per attempt)")
		downWait  = flag.Duration("alldown-wait", 5*time.Second, "how long to wait for a reconnect when every executor is down")
		noDelta   = flag.Bool("no-delta", false, "re-broadcast the full model/vocab every batch (v1 wire behavior)")
		noPipe    = flag.Bool("no-pipeline", false, "disable next-batch data presend")

		trace     = flag.Bool("trace", false, "record a per-batch span (queue, executor_rtt, executor_compute, merge)")
		traceSlow = flag.Duration("trace-slow-budget", 250*time.Millisecond, "batch latency budget; slower batches are captured with full stage breakdown (negative disables)")
		debugAddr = flag.String("debug-addr", "", "optional debug listener with net/http/pprof, /v1/trace, and runtime gauges on /metrics")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if *executors == "" {
		fatal("need -executors host:port[,host:port...]")
	}

	opts := core.DefaultOptions()
	switch *model {
	case "ht":
		opts.Model = core.ModelHT
	case "arf":
		opts.Model = core.ModelARF
	case "slr":
		opts.Model = core.ModelSLR
	default:
		fatal("unknown model (use ht, arf, or slr)", "model", *model)
	}
	if *classes == 2 {
		opts.Scheme = core.TwoClass
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("open input failed", "path", *in, "err", err)
		}
		defer f.Close()
		r = f
	}
	var src engine.Source = engine.NewReaderSource(twitterdata.NewReader(r))
	if *rate > 0 {
		src = engine.NewRateLimitedSource(src, *rate)
	}

	var tracer *obs.Tracer
	if *trace {
		tracer = obs.New(obs.Config{
			Enabled:    true,
			SlowBudget: *traceSlow,
			Registry:   metrics.Default(),
		})
	}
	if *debugAddr != "" {
		obs.RegisterRuntimeGauges(metrics.Default())
		ln, stopDebug, err := obs.StartDebugServer(*debugAddr, tracer)
		if err != nil {
			fatal("debug listener failed", "addr", *debugAddr, "err", err)
		}
		defer stopDebug()
		logger.Info("debug server listening", "addr", ln.Addr().String(), "trace", *trace)
	}

	execList := strings.Split(*executors, ",")
	logger.Info("starting cluster run",
		"executors", len(execList), "model", opts.Model.String(), "scheme", opts.Scheme.String(),
		"batch", *batch, "tasks", *tasks, "trace", *trace)
	p := core.NewPipeline(opts)
	stats, err := engine.RunCluster(p, src, engine.ClusterConfig{
		Executors:        execList,
		BatchSize:        *batch,
		TasksPerExecutor: *tasks,
		MaxConnAttempts:  *attempts,
		ReconnectBackoff: *backoff,
		AllDownWait:      *downWait,
		DisableDelta:     *noDelta,
		DisablePipeline:  *noPipe,
		Tracer:           tracer,
	})
	if err != nil {
		fatal("cluster run failed", "err", err)
	}

	rep := p.Summary()
	fmt.Printf("processed %d tweets in %.2fs (%.0f tweets/s) over %d batches\n",
		stats.Processed, stats.Duration.Seconds(), stats.Throughput(), stats.Batches)
	fmt.Printf("batch latency: mean %s, max %s\n", stats.MeanBatchLatency, stats.MaxBatchLatency)
	fmt.Printf("broadcast: %.1f KB total (%.2f KB/batch), data: %.1f KB\n",
		float64(stats.BroadcastBytes)/1024, float64(stats.BroadcastBytes)/1024/float64(max(stats.Batches, 1)),
		float64(stats.DataBytes)/1024)
	fmt.Printf("resilience: %d failovers, %d resyncs, %d reconnects\n",
		stats.Failovers, stats.Resyncs, stats.Reconnects)
	if opts.Model == core.ModelARF {
		fmt.Printf("drift: %d warnings, %d drifts, %d tree replacements\n",
			stats.Warnings, stats.Drifts, stats.TreeReplacements)
	}
	fmt.Printf("alerts raised: %d\n", p.Alerter().Raised())
	fmt.Printf("user state: %d active users (%d evicted), %d session verdicts, %d escalations\n",
		stats.ActiveUsers, stats.UserEvictions,
		p.Users().SessionVerdicts(), p.Users().Escalations())
	if rep.Instances > 0 {
		fmt.Printf("prequential: accuracy=%.4f precision=%.4f recall=%.4f F1=%.4f\n",
			rep.Accuracy, rep.Precision, rep.Recall, rep.F1)
	}
	if tracer != nil {
		sum := tracer.Snapshot(0)
		fmt.Printf("trace: %d batch spans (%d slow, budget %s)\n",
			sum.Spans, sum.SlowSpans, time.Duration(sum.SlowBudgetNanos))
		for _, st := range sum.Stages {
			fmt.Printf("  %-16s p50=%-10s p95=%-10s p99=%s\n",
				st.Stage, obs.DurString(st.P50Nanos), obs.DurString(st.P95Nanos), obs.DurString(st.P99Nanos))
		}
	}
}
