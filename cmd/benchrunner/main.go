// Command benchrunner regenerates any table or figure of the paper's
// evaluation section.
//
// Usage:
//
//	benchrunner -exp table2                  # one experiment, paper scale
//	benchrunner -exp fig11 -scale 0.25       # reduced scale
//	benchrunner -exp all -scale 0.1          # everything, quickly
//	benchrunner -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"redhanded/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrunner: ")
	var (
		exp    = flag.String("exp", "", "experiment id (table1, table2, fig4..fig17) or 'all'")
		scale  = flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = paper scale)")
		seed   = flag.Uint64("seed", 42, "random seed")
		counts = flag.String("counts", "", "comma-separated tweet counts for fig15/fig16 (default paper sweep)")
		execs  = flag.Int("executors", 3, "cluster executor count for fig15/fig16")
		cores  = flag.Int("cores", 8, "worker threads per executor / SparkLocal cores")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-8s %s\n", id, experiments.Description(id))
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.ClusterExecutors = *execs
	cfg.ClusterWorkers = *cores
	if *counts != "" {
		cfg.TweetCounts = nil
		for _, part := range strings.Split(*counts, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				log.Fatalf("bad -counts entry %q: %v", part, err)
			}
			cfg.TweetCounts = append(cfg.TweetCounts, n)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fmt.Printf("=== %s: %s (scale %g) ===\n", id, experiments.Description(id), cfg.Scale)
		start := time.Now()
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
