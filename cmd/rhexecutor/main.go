// Command rhexecutor runs one cluster executor node. Start several (on one
// or many machines), then point the driver at them:
//
//	rhexecutor -addr 127.0.0.1:7701 -workers 8 &
//	rhexecutor -addr 127.0.0.1:7702 -workers 8 &
//	rhexecutor -addr 127.0.0.1:7703 -workers 8 &
//	# drive them from Go code via engine.RunCluster, or see examples/firehose.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"redhanded/internal/engine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rhexecutor: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:7701", "listen address")
		workers = flag.Int("workers", 8, "parallel task slots")
	)
	flag.Parse()

	ex, err := engine.StartExecutor(*addr, *workers)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("executor listening on %s with %d workers", ex.Addr(), *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down after %d batches", ex.Handled())
	ex.Close()
}
