// Command rhexecutor runs one cluster executor node. Start several (on one
// or many machines), then point the driver at them:
//
//	rhexecutor -addr 127.0.0.1:7701 -workers 8 &
//	rhexecutor -addr 127.0.0.1:7702 -workers 8 &
//	rhexecutor -addr 127.0.0.1:7703 -workers 8 &
//	# drive them from Go code via engine.RunCluster, or see examples/cluster.
//
// On SIGINT/SIGTERM the executor drains: shares already being processed
// finish and their responses reach the driver before the process exits, so
// a rolling restart never loses a batch (the driver fails the next share
// over to the surviving nodes and reconnects here once the replacement is
// up).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"redhanded/internal/engine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rhexecutor: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:7701", "listen address")
		workers = flag.Int("workers", 8, "parallel task slots")
	)
	flag.Parse()

	ex, err := engine.StartExecutor(*addr, *workers)
	if err != nil {
		log.Fatal(err)
	}
	ex.OnHello(func(kind string, accepted bool) {
		if accepted {
			log.Printf("driver session negotiated model kind %s", kind)
		} else {
			log.Printf("driver session rejected: cannot host model kind %q", kind)
		}
	})
	log.Printf("executor listening on %s with %d workers", ex.Addr(), *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining after %d shares (%d live sessions)", ex.Handled(), ex.ActiveConns())
	if err := ex.Close(); err != nil {
		log.Fatalf("accept loop had failed: %v", err)
	}
	log.Printf("drained cleanly after %d shares", ex.Handled())
}
