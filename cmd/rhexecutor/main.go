// Command rhexecutor runs one cluster executor node. Start several (on one
// or many machines), then point the driver at them:
//
//	rhexecutor -addr 127.0.0.1:7701 -workers 8 &
//	rhexecutor -addr 127.0.0.1:7702 -workers 8 &
//	rhexecutor -addr 127.0.0.1:7703 -workers 8 &
//	# drive them from Go code via engine.RunCluster, or see examples/cluster.
//
// On SIGINT/SIGTERM the executor drains: shares already being processed
// finish and their responses reach the driver before the process exits, so
// a rolling restart never loses a batch (the driver fails the next share
// over to the surviving nodes and reconnects here once the replacement is
// up).
package main

import (
	"flag"
	"os"
	"os/signal"
	"syscall"

	"redhanded/internal/engine"
	"redhanded/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7701", "listen address")
		workers   = flag.Int("workers", 8, "parallel task slots")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, *logFormat, *logLevel)

	ex, err := engine.StartExecutor(*addr, *workers)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	log := logger.With("executor", ex.Addr())
	ex.OnHello(func(kind string, accepted bool) {
		if accepted {
			log.Info("driver session negotiated", "model_kind", kind)
		} else {
			log.Warn("driver session rejected: cannot host model kind", "model_kind", kind)
		}
	})
	log.Info("executor listening", "workers", *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("draining", "shares", ex.Handled(), "live_sessions", ex.ActiveConns())
	if err := ex.Close(); err != nil {
		log.Error("accept loop had failed", "err", err)
		os.Exit(1)
	}
	log.Info("drained cleanly", "shares", ex.Handled())
}
