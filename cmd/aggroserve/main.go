// Command aggroserve runs the real-time aggression detection pipeline as a
// sharded HTTP service: tweets arrive over POST /v1/classify (synchronous)
// and POST /v1/ingest (NDJSON batches, asynchronous), alerts stream out of
// GET /v1/alerts as Server-Sent Events, and GET /v1/stats and GET /metrics
// expose per-shard prequential metrics and Prometheus-format counters.
//
// Usage:
//
//	aggroserve -addr :8080 -shards 4 -queue 2048
//	aggroserve -model slr -classes 2 -checkpoint /var/lib/aggro -restore
//
// On SIGINT/SIGTERM the server stops accepting work, drains every shard
// queue, and (with -checkpoint) writes one core checkpoint per shard so a
// restart with -restore resumes the incrementally learned state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/norm"
	"redhanded/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aggroserve: ")
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		model      = flag.String("model", "ht", "streaming model: ht, arf, slr")
		classes    = flag.Int("classes", 3, "class scheme: 2 or 3")
		preprocess = flag.Bool("preprocess", true, "enable text preprocessing")
		normMode   = flag.String("norm", "robust", "normalization: none, minmax, robust, zscore")
		adaptive   = flag.Bool("adaptive-bow", true, "enable the adaptive bag-of-words")
		threshold  = flag.Float64("alert-threshold", 0.5, "alert confidence threshold")
		shards     = flag.Int("shards", 4, "pipeline shards (user affinity is hash(userID) % shards)")
		queue      = flag.Int("queue", 2048, "per-shard queue depth before 429 backpressure")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		checkpoint = flag.String("checkpoint", "", "checkpoint directory written on graceful shutdown")
		restore    = flag.Bool("restore", false, "restore shard state from -checkpoint before serving")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max time to drain shard queues on shutdown")

		maxUsers = flag.Int("max-users", 0, "user-state record cap across all shards, CLOCK-evicted (0 = unbounded)")
		userTTL  = flag.Duration("user-ttl", 24*time.Hour, "retire user records idle this long (event time; amortized into the hot path)")
		escScore = flag.Float64("escalation-threshold", 0.6, "EWMA aggression score that flags a user as escalating (negative disables)")
		escMin   = flag.Int("escalation-min-tweets", 8, "minimum observed tweets before a user can escalate")
	)
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Preprocess = *preprocess
	opts.AdaptiveBoW = *adaptive
	opts.AlertThreshold = *threshold
	opts.Users.MaxUsers = *maxUsers
	opts.Users.TTL = *userTTL
	opts.Users.Escalation.Threshold = *escScore
	opts.Users.Escalation.MinTweets = *escMin
	switch *model {
	case "ht":
		opts.Model = core.ModelHT
	case "arf":
		opts.Model = core.ModelARF
	case "slr":
		opts.Model = core.ModelSLR
	default:
		log.Fatalf("unknown model %q", *model)
	}
	switch *classes {
	case 2:
		opts.Scheme = core.TwoClass
	case 3:
		opts.Scheme = core.ThreeClass
	default:
		log.Fatalf("classes must be 2 or 3")
	}
	switch *normMode {
	case "none":
		opts.Normalization = norm.None
	case "minmax":
		opts.Normalization = norm.MinMax
	case "robust":
		opts.Normalization = norm.MinMaxRobust
	case "zscore":
		opts.Normalization = norm.ZScore
	default:
		log.Fatalf("unknown normalization %q", *normMode)
	}

	srv := serve.NewServer(serve.Options{
		Pipeline:   opts,
		Shards:     *shards,
		QueueDepth: *queue,
		RetryAfter: *retryAfter,
	})
	if *restore {
		if *checkpoint == "" {
			log.Fatal("-restore requires -checkpoint")
		}
		if err := srv.Restore(*checkpoint); err != nil {
			log.Fatal(err)
		}
		log.Printf("restored %d shards from %s", srv.Shards(), *checkpoint)
	}

	// WriteTimeout stays 0: /v1/alerts is a long-lived SSE stream.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s: model=%s %s shards=%d queue=%d", *addr, opts.Model, opts.Scheme, *shards, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %s, shutting down", sig)
	}

	// Drain first: it stops intake, terminates the long-lived SSE streams,
	// and waits for the shard queues to empty — so the HTTP shutdown that
	// follows (which waits on in-flight requests) finishes promptly and
	// cannot eat the drain budget.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainWait)
	defer cancelDrain()
	drainErr := srv.Drain(drainCtx)
	if drainErr != nil {
		log.Printf("drain: %v", drainErr)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	switch {
	case *checkpoint == "":
	case drainErr != nil:
		// Shards may still be training; a checkpoint now would serialize
		// state mid-mutation and -restore would load it as authoritative.
		log.Printf("skipping checkpoint: shards did not drain cleanly")
	default:
		if err := srv.Checkpoint(*checkpoint); err != nil {
			log.Printf("checkpoint: %v", err)
		} else {
			log.Printf("checkpointed %d shards to %s", srv.Shards(), *checkpoint)
		}
	}
	var processed, warnings, drifts, replacements int64
	var activeUsers, evictions, sessionVerdicts, escalations int64
	for i := 0; i < srv.Shards(); i++ {
		p := srv.Pipeline(i)
		processed += p.Processed()
		if d := p.DriftStats(); d != nil {
			warnings += d.Warnings
			drifts += d.Drifts
			replacements += d.TreeReplacements
		}
		users := p.Users()
		activeUsers += int64(users.Len())
		capEv, ttlEv := users.Evictions()
		evictions += capEv + ttlEv
		sessionVerdicts += users.SessionVerdicts()
		escalations += users.Escalations()
	}
	fmt.Printf("processed %d tweets across %d shards in %s\n",
		processed, srv.Shards(), srv.Uptime().Round(time.Millisecond))
	fmt.Printf("user state: %d active users (%d evicted), %d session verdicts, %d escalations\n",
		activeUsers, evictions, sessionVerdicts, escalations)
	if opts.Model == core.ModelARF {
		fmt.Printf("drift: %d warnings, %d drifts, %d tree replacements\n",
			warnings, drifts, replacements)
	}
	if errors.Is(<-errc, http.ErrServerClosed) {
		return
	}
}
