// Command aggroserve runs the real-time aggression detection pipeline as a
// sharded HTTP service: tweets arrive over POST /v1/classify (synchronous)
// and POST /v1/ingest (NDJSON batches, asynchronous), alerts stream out of
// GET /v1/alerts as Server-Sent Events, and GET /v1/stats and GET /metrics
// expose per-shard prequential metrics and Prometheus-format counters.
//
// Usage:
//
//	aggroserve -addr :8080 -shards 4 -queue 2048
//	aggroserve -model slr -classes 2 -checkpoint /var/lib/aggro -restore
//	aggroserve -log-dir /var/lib/aggro/log -fsync interval -replay
//	aggroserve -trace -trace-slow-budget 25ms -debug-addr 127.0.0.1:6060
//
// With -log-dir every accepted tweet is appended to a partitioned
// write-ahead log before it is enqueued (-fsync selects the durability
// policy), and -replay re-applies unapplied records on startup — after
// -restore, the combination resumes exactly where a crashed process
// stopped, losing at most records the filesystem had not committed.
//
// With -trace every tweet is stamped with a span at ingest and its per-stage
// timings (queue wait, feature extraction, classification, user-state
// observe, verdict fan-out, SSE emit) are served from GET /v1/trace and
// GET /v1/trace/slow; -debug-addr starts a separate listener with
// net/http/pprof plus the trace endpoints and registers runtime gauges on
// /metrics.
//
// On SIGINT/SIGTERM the server stops accepting work, drains every shard
// queue, and (with -checkpoint) writes one core checkpoint per shard so a
// restart with -restore resumes the incrementally learned state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/ingestlog"
	"redhanded/internal/metrics"
	"redhanded/internal/norm"
	"redhanded/internal/obs"
	"redhanded/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		model      = flag.String("model", "ht", "streaming model: ht, arf, slr")
		classes    = flag.Int("classes", 3, "class scheme: 2 or 3")
		preprocess = flag.Bool("preprocess", true, "enable text preprocessing")
		normMode   = flag.String("norm", "robust", "normalization: none, minmax, robust, zscore")
		adaptive   = flag.Bool("adaptive-bow", true, "enable the adaptive bag-of-words")
		threshold  = flag.Float64("alert-threshold", 0.5, "alert confidence threshold")
		shards     = flag.Int("shards", 4, "pipeline shards (user affinity is hash(userID) % shards)")
		queue      = flag.Int("queue", 2048, "per-shard queue depth before 429 backpressure")
		drainBatch = flag.Int("drain-batch", 32, "max queued tweets a shard drains per lock acquisition (1 = per-tweet)")
		featCache  = flag.Int("featcache", 0, "per-shard extraction-cache entries for duplicate texts (0 = default 8192, negative disables)")
		legacyDec  = flag.Bool("legacy-json-decode", false, "decode ingress bodies with encoding/json instead of the pooled zero-alloc decoder (A/B escape hatch)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		checkpoint = flag.String("checkpoint", "", "checkpoint directory written on graceful shutdown")
		restore    = flag.Bool("restore", false, "restore shard state from -checkpoint before serving")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max time to drain shard queues on shutdown")

		logDir     = flag.String("log-dir", "", "durable ingest log directory; accepted tweets are write-ahead logged per shard")
		fsyncMode  = flag.String("fsync", "interval", "ingest log durability: off, interval, always")
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, "fsync cadence under -fsync interval")
		replay     = flag.Bool("replay", false, "replay unapplied ingest-log records before serving (requires -log-dir)")

		maxUsers = flag.Int("max-users", 0, "user-state record cap across all shards, CLOCK-evicted (0 = unbounded)")
		userTTL  = flag.Duration("user-ttl", 24*time.Hour, "retire user records idle this long (event time; amortized into the hot path)")
		escScore = flag.Float64("escalation-threshold", 0.6, "EWMA aggression score that flags a user as escalating (negative disables)")
		escMin   = flag.Int("escalation-min-tweets", 8, "minimum observed tweets before a user can escalate")

		trace     = flag.Bool("trace", false, "stamp every tweet with a per-stage span (GET /v1/trace, /v1/trace/slow)")
		traceSlow = flag.Duration("trace-slow-budget", 25*time.Millisecond, "latency budget; spans over it are captured with full stage breakdown (negative disables)")
		traceRing = flag.Int("trace-ring", 512, "per-shard trace ring capacity (rounded up to a power of two)")
		debugAddr = flag.String("debug-addr", "", "optional debug listener with net/http/pprof + trace endpoints; also registers runtime gauges on /metrics")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	opts := core.DefaultOptions()
	opts.Preprocess = *preprocess
	opts.FeatureCacheEntries = *featCache
	opts.AdaptiveBoW = *adaptive
	opts.AlertThreshold = *threshold
	opts.Users.MaxUsers = *maxUsers
	opts.Users.TTL = *userTTL
	opts.Users.Escalation.Threshold = *escScore
	opts.Users.Escalation.MinTweets = *escMin
	switch *model {
	case "ht":
		opts.Model = core.ModelHT
	case "arf":
		opts.Model = core.ModelARF
	case "slr":
		opts.Model = core.ModelSLR
	default:
		fatal("unknown model", "model", *model)
	}
	switch *classes {
	case 2:
		opts.Scheme = core.TwoClass
	case 3:
		opts.Scheme = core.ThreeClass
	default:
		fatal("classes must be 2 or 3", "classes", *classes)
	}
	switch *normMode {
	case "none":
		opts.Normalization = norm.None
	case "minmax":
		opts.Normalization = norm.MinMax
	case "robust":
		opts.Normalization = norm.MinMaxRobust
	case "zscore":
		opts.Normalization = norm.ZScore
	default:
		fatal("unknown normalization", "norm", *normMode)
	}

	var ilog *ingestlog.Log
	if *logDir != "" {
		policy, err := ingestlog.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fatal("bad -fsync", "err", err)
		}
		ilog, err = ingestlog.Open(ingestlog.Options{
			Dir:        *logDir,
			Partitions: *shards,
			Fsync:      policy,
			FsyncEvery: *fsyncEvery,
			Registry:   metrics.Default(),
		})
		if err != nil {
			fatal("ingest log open failed", "dir", *logDir, "err", err)
		}
		defer ilog.Close()
		logger.Info("ingest log open", "dir", *logDir, "partitions", *shards, "fsync", policy.String())
	} else if *replay {
		fatal("-replay requires -log-dir")
	}

	srv := serve.NewServer(serve.Options{
		Pipeline:         opts,
		Shards:           *shards,
		QueueDepth:       *queue,
		DrainBatch:       *drainBatch,
		RetryAfter:       *retryAfter,
		Log:              ilog,
		LegacyJSONDecode: *legacyDec,
		Trace: obs.Config{
			Enabled:    *trace,
			RingSize:   *traceRing,
			SlowBudget: *traceSlow,
		},
	})
	if *restore {
		if *checkpoint == "" {
			fatal("-restore requires -checkpoint")
		}
		if err := srv.Restore(*checkpoint); err != nil {
			fatal("restore failed", "dir", *checkpoint, "err", err)
		}
		logger.Info("restored checkpoint", "shards", srv.Shards(), "dir", *checkpoint)
	}
	if *replay {
		// Replay before serving: apply every log record past each shard's
		// restored offset (with no -restore, the whole log), so the first
		// live tweet lands on the exact state the crashed process had.
		start := time.Now()
		n, err := srv.Replay()
		if err != nil {
			fatal("replay failed", "dir", *logDir, "err", err)
		}
		logger.Info("replayed ingest log", "records", n, "dir", *logDir,
			"took", time.Since(start).Round(time.Millisecond).String())
	}

	if *debugAddr != "" {
		obs.RegisterRuntimeGauges(metrics.Default())
		_, stopDebug, err := obs.StartDebugServer(*debugAddr, srv.Tracer())
		if err != nil {
			fatal("debug listener failed", "addr", *debugAddr, "err", err)
		}
		defer stopDebug()
		logger.Info("debug server listening", "addr", *debugAddr, "pprof", true, "trace", *trace)
	}

	// WriteTimeout stays 0: /v1/alerts is a long-lived SSE stream.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving",
		"addr", *addr, "model", opts.Model.String(), "scheme", opts.Scheme.String(),
		"shards", *shards, "queue", *queue, "trace", *trace)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal("server failed", "err", err)
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	}

	// Drain first: it stops intake, terminates the long-lived SSE streams,
	// and waits for the shard queues to empty — so the HTTP shutdown that
	// follows (which waits on in-flight requests) finishes promptly and
	// cannot eat the drain budget.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainWait)
	defer cancelDrain()
	drainErr := srv.Drain(drainCtx)
	if drainErr != nil {
		logger.Error("drain failed", "err", drainErr)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		logger.Error("http shutdown failed", "err", err)
	}
	switch {
	case *checkpoint == "":
	case drainErr != nil:
		// Shards may still be training; a checkpoint now would serialize
		// state mid-mutation and -restore would load it as authoritative.
		logger.Warn("skipping checkpoint: shards did not drain cleanly")
	default:
		if err := srv.Checkpoint(*checkpoint); err != nil {
			logger.Error("checkpoint failed", "dir", *checkpoint, "err", err)
		} else {
			logger.Info("checkpointed", "shards", srv.Shards(), "dir", *checkpoint)
		}
	}
	var processed, warnings, drifts, replacements int64
	var activeUsers, evictions, sessionVerdicts, escalations int64
	for i := 0; i < srv.Shards(); i++ {
		p := srv.Pipeline(i)
		processed += p.Processed()
		if d := p.DriftStats(); d != nil {
			warnings += d.Warnings
			drifts += d.Drifts
			replacements += d.TreeReplacements
		}
		users := p.Users()
		activeUsers += int64(users.Len())
		capEv, ttlEv := users.Evictions()
		evictions += capEv + ttlEv
		sessionVerdicts += users.SessionVerdicts()
		escalations += users.Escalations()
	}
	fmt.Printf("processed %d tweets across %d shards in %s\n",
		processed, srv.Shards(), srv.Uptime().Round(time.Millisecond))
	fmt.Printf("user state: %d active users (%d evicted), %d session verdicts, %d escalations\n",
		activeUsers, evictions, sessionVerdicts, escalations)
	if opts.Model == core.ModelARF {
		fmt.Printf("drift: %d warnings, %d drifts, %d tree replacements\n",
			warnings, drifts, replacements)
	}
	if errors.Is(<-errc, http.ErrServerClosed) {
		return
	}
}
