// Command gridsearch reproduces the Table I hyperparameter study. The
// default mode sweeps each parameter around the Table I selections; -full
// runs the complete cartesian Hoeffding-tree grid (216 configurations).
//
// Usage:
//
//	gridsearch -scale 0.25
//	gridsearch -full -scale 0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"redhanded/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridsearch: ")
	var (
		scale   = flag.Float64("scale", 0.25, "dataset size multiplier")
		seed    = flag.Uint64("seed", 42, "random seed")
		full    = flag.Bool("full", false, "run the full cartesian HT grid")
		verbose = flag.Bool("v", false, "print every grid point (with -full)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	if *full {
		progress := os.Stdout
		if !*verbose {
			progress = nil
		}
		best, f1 := experiments.FullHTGrid(cfg, progress)
		fmt.Printf("best HT configuration (F1 %.4f):\n", f1)
		fmt.Printf("  Split Criterion:  %v\n", best.SplitCriterion)
		fmt.Printf("  Split Confidence: %g\n", best.SplitConfidence)
		fmt.Printf("  Tie Threshold:    %g\n", best.TieThreshold)
		fmt.Printf("  Grace Period:     %d\n", best.GracePeriod)
		fmt.Printf("  Max Tree Depth:   %d\n", best.MaxDepth)
		return
	}
	if err := experiments.Run("table1", cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
