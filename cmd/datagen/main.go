// Command datagen generates the synthetic datasets (JSON Lines of
// Twitter-API-shaped payloads) used throughout the reproduction.
//
// Usage:
//
//	datagen -dataset aggression -scale 1.0 -out aggression.jsonl
//	datagen -dataset sarcasm    -out sarcasm.jsonl
//	datagen -dataset offensive  -out offensive.jsonl
//	datagen -dataset unlabeled  -n 250000 -out stream.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"redhanded/internal/twitterdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		dataset = flag.String("dataset", "aggression", "dataset to generate: aggression, sarcasm, offensive, unlabeled")
		out     = flag.String("out", "-", "output path (- for stdout)")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = paper scale)")
		seed    = flag.Uint64("seed", 42, "generation seed")
		n       = flag.Int64("n", 100000, "tweet count for -dataset unlabeled")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	writer := twitterdata.NewWriter(w)

	count := 0
	emit := func(tweets []twitterdata.Tweet) {
		for i := range tweets {
			if err := writer.Write(tweets[i]); err != nil {
				log.Fatal(err)
			}
			count++
		}
	}

	switch *dataset {
	case "aggression":
		cfg := twitterdata.DefaultAggressionConfig()
		cfg.Seed = *seed
		cfg.NormalCount = scaled(cfg.NormalCount, *scale)
		cfg.AbusiveCount = scaled(cfg.AbusiveCount, *scale)
		cfg.HatefulCount = scaled(cfg.HatefulCount, *scale)
		emit(twitterdata.GenerateAggression(cfg))
	case "sarcasm":
		cfg := twitterdata.DefaultSarcasmConfig()
		cfg.Seed = *seed
		cfg.SarcasticCount = scaled(cfg.SarcasticCount, *scale)
		cfg.NormalCount = scaled(cfg.NormalCount, *scale)
		emit(twitterdata.GenerateSarcasm(cfg))
	case "offensive":
		cfg := twitterdata.DefaultOffensiveConfig()
		cfg.Seed = *seed
		cfg.RacistCount = scaled(cfg.RacistCount, *scale)
		cfg.SexistCount = scaled(cfg.SexistCount, *scale)
		cfg.NoneCount = scaled(cfg.NoneCount, *scale)
		emit(twitterdata.GenerateOffensive(cfg))
	case "unlabeled":
		src := twitterdata.NewUnlabeledSource(*seed, 10)
		for i := int64(0); i < *n; i++ {
			if err := writer.Write(src.Next()); err != nil {
				log.Fatal(err)
			}
			count++
		}
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	if err := writer.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d tweets\n", count)
}

func scaled(v int, scale float64) int {
	out := int(float64(v) * scale)
	if out < 1 {
		out = 1
	}
	return out
}
