// Command loadgen replays synthetic datagen traffic against a running
// aggroserve instance at a target rate and reports client-observed latency
// percentiles and sustained throughput — the serving hot path's benchmark.
//
// Usage:
//
//	aggroserve -addr :8080 -shards 4 &
//	loadgen -url http://localhost:8080 -rps 20000 -duration 10s
//	loadgen -url http://localhost:8080 -mode classify -rps 2000
//
// In ingest mode tweets are shipped as NDJSON batches to /v1/ingest (the
// firehose path); in classify mode each tweet is a synchronous
// /v1/classify request. Tweets above the server's queue capacity come back
// as 429s and are reported as rejected, so driving -rps past capacity
// measures the backpressure behavior rather than overloading the server.
//
// When the server runs with -trace, loadgen pulls GET /v1/trace after the
// run and prints the server-side per-stage latency breakdown next to the
// client-observed percentiles — separating queue wait from compute from
// network.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/obs"
	"redhanded/internal/serve"
	"redhanded/internal/twitterdata"
)

var logger *slog.Logger

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "aggroserve base URL")
		mode     = flag.String("mode", "ingest", "ingest (NDJSON batches) or classify (synchronous)")
		rps      = flag.Float64("rps", 10000, "target tweets per second")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		batch    = flag.Int("batch", 200, "tweets per /v1/ingest request")
		workers  = flag.Int("workers", 8, "concurrent HTTP connections")
		pool     = flag.Int("pool", 20000, "distinct tweets in the replay pool")
		labeled  = flag.Float64("labeled-share", 0.1, "fraction of pool tweets keeping their label (training traffic)")
		seed     = flag.Uint64("seed", 42, "generation seed")
		dupRatio = flag.Float64("duplicate-ratio", 0, "probability a pool tweet repeats a recent text (retweet-heavy traffic; exercises the server's extraction cache)")

		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	logger = obs.NewLogger(os.Stderr, *logFormat, *logLevel)

	lines := buildPool(*pool, *labeled, *seed, *dupRatio)
	logger.Info("pool built",
		"tweets", len(lines), "labeled_share", *labeled, "duplicate_ratio", *dupRatio,
		"target_rps", *rps, "duration", duration.String())

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: *workers,
		MaxConnsPerHost:     0,
	}}

	// Pre-run server state, so the post-run report can show what the load
	// itself caused: snapshot rebuilds during the run and how the classify
	// stage's p99 moved. Both are nil/skipped against servers without the
	// endpoints or running without -trace.
	preTrace := fetchTrace(client, *url)
	preStats := fetchStats(client, *url)

	var (
		next      atomic.Int64 // next request index, shared pacing clock
		accepted  atomic.Int64
		rejected  atomic.Int64
		malformed atomic.Int64
		failed    atomic.Int64 // non-200/429 responses (400s, 503s, ...)
		errs      atomic.Int64
	)
	perReq := 1
	if *mode == "ingest" {
		perReq = *batch
	}
	interval := time.Duration(float64(perReq) / *rps * float64(time.Second))
	start := time.Now()
	deadline := start.Add(*duration)

	latencies := make([][]time.Duration, *workers)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				due := start.Add(time.Duration(n) * interval)
				if due.After(deadline) {
					return
				}
				if wait := time.Until(due); wait > 0 {
					time.Sleep(wait)
				}
				var (
					t0   = time.Now()
					resp *http.Response
					err  error
				)
				if *mode == "ingest" {
					resp, err = postIngest(client, *url, lines, int(n)*perReq, perReq)
				} else {
					resp, err = postClassify(client, *url, lines[int(n)%len(lines)])
				}
				lat := time.Since(t0)
				if err != nil {
					errs.Add(1)
					continue
				}
				latencies[w] = append(latencies[w], lat)
				consume(resp, *mode, perReq, &accepted, &rejected, &malformed, &failed)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	fmt.Printf("\nmode=%s requests=%d elapsed=%s\n", *mode, len(all), elapsed.Round(time.Millisecond))
	fmt.Printf("tweets: accepted=%d rejected(429)=%d malformed=%d failed=%d transport-errors=%d\n",
		accepted.Load(), rejected.Load(), malformed.Load(), failed.Load(), errs.Load())
	fmt.Printf("sustained throughput: %.0f accepted tweets/s (target %.0f/s)\n",
		float64(accepted.Load())/elapsed.Seconds(), *rps)
	if len(all) > 0 {
		fmt.Printf("request latency: p50=%s p95=%s p99=%s max=%s\n",
			pct(all, 0.50), pct(all, 0.95), pct(all, 0.99), all[len(all)-1].Round(time.Microsecond))
	}
	postTrace := fetchTrace(client, *url)
	printServerTrace(postTrace)
	postStats := fetchStats(client, *url)
	printSnapshotDelta(preTrace, postTrace, preStats, postStats)
	printFeatCacheDelta(preStats, postStats)
}

// fetchTrace pulls the server-side stage breakdown from GET /v1/trace.
// Returns nil against servers running without -trace (the endpoint
// feature-detects with enabled=false) or predating the endpoint entirely.
func fetchTrace(client *http.Client, base string) *obs.Summary {
	resp, err := client.Get(base + "/v1/trace")
	if err != nil {
		logger.Debug("trace fetch failed", "err", err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var sum obs.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		logger.Debug("trace decode failed", "err", err)
		return nil
	}
	if !sum.Enabled {
		return nil
	}
	return &sum
}

// fetchStats pulls GET /v1/stats; nil when the server is unreachable or
// the endpoint is missing.
func fetchStats(client *http.Client, base string) *serve.Stats {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		logger.Debug("stats fetch failed", "err", err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		logger.Debug("stats decode failed", "err", err)
		return nil
	}
	return &st
}

// printServerTrace prints the server-side stage breakdown as a table.
func printServerTrace(sum *obs.Summary) {
	if sum == nil || len(sum.Stages) == 0 {
		return
	}
	fmt.Printf("\nserver-side stage breakdown (%d spans, %d over the %s slow budget):\n",
		sum.Spans, sum.SlowSpans, time.Duration(sum.SlowBudgetNanos))
	fmt.Printf("  %-16s %10s %10s %10s %10s\n", "stage", "count", "p50", "p95", "p99")
	for _, st := range sum.Stages {
		fmt.Printf("  %-16s %10d %10s %10s %10s\n", st.Stage, st.Count,
			obs.DurString(st.P50Nanos), obs.DurString(st.P95Nanos), obs.DurString(st.P99Nanos))
	}
}

// classifyP99 extracts the classify stage's p99 from a trace summary
// (0 when the stage has not been observed).
func classifyP99(sum *obs.Summary) int64 {
	if sum == nil {
		return 0
	}
	for _, st := range sum.Stages {
		if st.Stage == "classify" {
			return st.P99Nanos
		}
	}
	return 0
}

// printSnapshotDelta reports what the run itself cost the lock-free
// classify path: compiled-snapshot rebuilds triggered during the load and
// the movement of the server-side classify p99. Printed only when the
// server traces (matching the stage table) and publishes snapshot
// counters on /v1/stats.
func printSnapshotDelta(preTrace, postTrace *obs.Summary, pre, post *serve.Stats) {
	if postTrace == nil || post == nil || post.SnapshotRebuilds == 0 {
		return
	}
	rebuilds, trees := post.SnapshotRebuilds, post.SnapshotTreesRebuilt
	if pre != nil {
		rebuilds -= pre.SnapshotRebuilds
		trees -= pre.SnapshotTreesRebuilt
	}
	fmt.Printf("\ncompiled snapshots: %d rebuilds during run (%d trees re-flattened; %d rebuilds total)\n",
		rebuilds, trees, post.SnapshotRebuilds)
	prev, cur := classifyP99(preTrace), classifyP99(postTrace)
	if cur > 0 {
		if prev > 0 {
			delta := time.Duration(cur - prev).Round(time.Microsecond)
			sign := ""
			if delta >= 0 {
				sign = "+"
			}
			fmt.Printf("classify p99: %s -> %s (%s%s)\n",
				obs.DurString(prev), obs.DurString(cur), sign, delta)
		} else {
			fmt.Printf("classify p99: %s\n", obs.DurString(cur))
		}
	}
}

// printFeatCacheDelta reports the server-side extraction-cache hit ratio
// over the run, from pre/post /v1/stats counter deltas. Printed only when
// the server publishes cache counters (cache enabled) and the run
// produced lookups.
func printFeatCacheDelta(pre, post *serve.Stats) {
	if post == nil || post.FeatCacheHits+post.FeatCacheMisses == 0 {
		return
	}
	hits, misses := post.FeatCacheHits, post.FeatCacheMisses
	if pre != nil {
		hits -= pre.FeatCacheHits
		misses -= pre.FeatCacheMisses
	}
	if hits+misses == 0 {
		return
	}
	fmt.Printf("\nextraction cache: %.1f%% hit ratio during run (%d hits / %d lookups; %d evictions total)\n",
		100*float64(hits)/float64(hits+misses), hits, hits+misses, post.FeatCacheEvictions)
}

// buildPool pre-marshals the replay pool: endless firehose-style tweets,
// with a slice of them keeping their labels so the server keeps training.
// A non-zero dupRatio makes both generators re-emit recent texts verbatim
// (retweet-style duplication), so a server-side extraction cache has
// something to hit.
func buildPool(n int, labeledShare float64, seed uint64, dupRatio float64) [][]byte {
	src := twitterdata.NewUnlabeledSource(seed, 10)
	src.SetDuplicateRatio(dupRatio)
	rng := rand.New(rand.NewPCG(seed, 0x10ad6e4))
	cfg := twitterdata.DefaultAggressionConfig()
	cfg.Seed = seed
	cfg.DuplicateRatio = dupRatio
	scale := float64(n) * labeledShare / 86000
	cfg.NormalCount = int(float64(cfg.NormalCount) * scale)
	cfg.AbusiveCount = int(float64(cfg.AbusiveCount) * scale)
	cfg.HatefulCount = int(float64(cfg.HatefulCount) * scale)
	labeled := twitterdata.GenerateAggression(cfg)

	lines := make([][]byte, 0, n)
	li := 0
	for i := 0; i < n; i++ {
		var t twitterdata.Tweet
		if li < len(labeled) && rng.Float64() < labeledShare {
			t = labeled[li]
			li++
		} else {
			t = src.Next()
		}
		blob, err := t.Marshal()
		if err != nil {
			logger.Error("marshal tweet failed", "err", err)
			os.Exit(1)
		}
		lines = append(lines, blob)
	}
	return lines
}

func postIngest(client *http.Client, base string, lines [][]byte, off, n int) (*http.Response, error) {
	var body bytes.Buffer
	body.Grow(n * 400)
	for i := 0; i < n; i++ {
		body.Write(lines[(off+i)%len(lines)])
		body.WriteByte('\n')
	}
	return client.Post(base+"/v1/ingest", "application/x-ndjson", &body)
}

func postClassify(client *http.Client, base string, line []byte) (*http.Response, error) {
	return client.Post(base+"/v1/classify", "application/json", bytes.NewReader(line))
}

// consume tallies one response's accept counts and drains the body so the
// connection is reused.
func consume(resp *http.Response, mode string, perReq int, accepted, rejected, malformed, failed *atomic.Int64) {
	defer resp.Body.Close()
	switch {
	case mode == "ingest":
		var ir serve.IngestResponse
		if json.NewDecoder(resp.Body).Decode(&ir) == nil {
			accepted.Add(ir.Accepted)
			rejected.Add(ir.Rejected)
			malformed.Add(ir.Malformed)
		} else {
			failed.Add(int64(perReq))
		}
	case resp.StatusCode == http.StatusOK:
		accepted.Add(int64(perReq))
	case resp.StatusCode == http.StatusTooManyRequests:
		rejected.Add(int64(perReq))
	default:
		failed.Add(int64(perReq))
	}
	io.Copy(io.Discard, resp.Body)
}

func pct(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(time.Microsecond)
}
