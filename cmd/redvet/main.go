// Command redvet runs the repo-native static-analysis suite: build-time
// proofs of the hot-path invariants the benchmarks measure dynamically.
//
//	redvet ./...                  run every check
//	redvet -checks noalloc ./...  run a subset
//	redvet -escape ./...          add compiler escape-analysis cross-check
//
// Exit codes: 0 clean, 1 findings reported, 2 driver or usage error —
// the contract CI keys off.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"redhanded/internal/analysis"
)

func main() {
	escape := flag.Bool("escape", false, "cross-check noalloc regions against go build -gcflags=-m")
	checks := flag.String("checks", "", "comma-separated check subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: redvet [-escape] [-checks c1,c2] [packages]\n\nchecks:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redvet:", err)
		os.Exit(2)
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "redvet:", err)
		os.Exit(2)
	}

	prog, err := analysis.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redvet:", err)
		os.Exit(2)
	}

	diags := analysis.Run(prog, analyzers)
	if *escape {
		esc, err := analysis.EscapeCheck(prog, analysis.BuildIndex(prog))
		if err != nil {
			fmt.Fprintln(os.Stderr, "redvet:", err)
			os.Exit(2)
		}
		diags = append(diags, esc...)
	}

	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(dir, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		fmt.Printf("%s:%d: [%s] %s\n", file, d.Pos.Line, d.Check, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "redvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
