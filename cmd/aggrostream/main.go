// Command aggrostream runs the real-time aggression detection pipeline
// over a JSONL tweet stream (stdin or a file), raising alerts as they
// happen and reporting the prequential evaluation at the end.
//
// Usage:
//
//	datagen -dataset aggression -scale 0.2 | aggrostream -classes 2 -show-alerts
//	aggrostream -in tweets.jsonl -model arf -norm zscore
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"redhanded/internal/core"
	"redhanded/internal/norm"
	"redhanded/internal/twitterdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aggrostream: ")
	var (
		in         = flag.String("in", "-", "input JSONL path (- for stdin)")
		model      = flag.String("model", "ht", "streaming model: ht, arf, slr")
		classes    = flag.Int("classes", 3, "class scheme: 2 or 3")
		preprocess = flag.Bool("preprocess", true, "enable text preprocessing")
		normMode   = flag.String("norm", "robust", "normalization: none, minmax, robust, zscore")
		adaptive   = flag.Bool("adaptive-bow", true, "enable the adaptive bag-of-words")
		threshold  = flag.Float64("alert-threshold", 0.5, "alert confidence threshold")
		showAlerts = flag.Bool("show-alerts", false, "print each alert as it is raised")
		maxAlerts  = flag.Int("max-alerts", 20, "alert print cap with -show-alerts")
	)
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Preprocess = *preprocess
	opts.AdaptiveBoW = *adaptive
	opts.AlertThreshold = *threshold
	switch *model {
	case "ht":
		opts.Model = core.ModelHT
	case "arf":
		opts.Model = core.ModelARF
	case "slr":
		opts.Model = core.ModelSLR
	default:
		log.Fatalf("unknown model %q", *model)
	}
	switch *classes {
	case 2:
		opts.Scheme = core.TwoClass
	case 3:
		opts.Scheme = core.ThreeClass
	default:
		log.Fatalf("classes must be 2 or 3")
	}
	switch *normMode {
	case "none":
		opts.Normalization = norm.None
	case "minmax":
		opts.Normalization = norm.MinMax
	case "robust":
		opts.Normalization = norm.MinMaxRobust
	case "zscore":
		opts.Normalization = norm.ZScore
	default:
		log.Fatalf("unknown normalization %q", *normMode)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	p := core.NewPipeline(opts)
	printed := 0
	if *showAlerts {
		p.Alerter().Subscribe(core.AlertSinkFunc(func(a core.Alert) {
			if printed < *maxAlerts {
				fmt.Printf("ALERT %-8s conf=%.2f user=%s tweet=%s %q\n",
					a.Label, a.Confidence, a.ScreenName, a.TweetID, clip(a.Text, 60))
				printed++
			}
		}))
	}

	reader := twitterdata.NewReader(r)
	var processed, malformed int64
	for {
		tw, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			malformed++
			continue
		}
		p.Process(&tw)
		processed++
	}

	rep := p.Summary()
	fmt.Printf("\nprocessed %d tweets (%d labeled, %d malformed lines skipped)\n",
		processed, rep.Instances, malformed)
	fmt.Printf("alerts raised: %d; users flagged for suspension: %d\n",
		p.Alerter().Raised(), len(p.Alerter().SuspendedUsers()))
	fmt.Printf("BoW size: %d words\n", p.Extractor().BoW().Size())
	if rep.Instances > 0 {
		fmt.Printf("prequential evaluation: accuracy=%.4f precision=%.4f recall=%.4f F1=%.4f\n",
			rep.Accuracy, rep.Precision, rep.Recall, rep.F1)
		fmt.Println(p.Evaluator().Matrix().String())
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
