// Package cmd_test exercises the command-line tools end to end: datagen's
// JSONL output must stream cleanly through aggrostream's detection
// pipeline.
package cmd_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one command into the test temp dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "redhanded/cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestDatagenAggrostreamRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI round trip is slow")
	}
	dir := t.TempDir()
	datagen := buildTool(t, dir, "datagen")
	aggrostream := buildTool(t, dir, "aggrostream")

	dataFile := filepath.Join(dir, "tweets.jsonl")
	gen := exec.Command(datagen, "-dataset", "aggression", "-scale", "0.05", "-out", dataFile)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}

	run := exec.Command(aggrostream, "-in", dataFile, "-classes", "2")
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("aggrostream: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"prequential evaluation", "alerts raised", "BoW size"} {
		if !strings.Contains(text, want) {
			t.Errorf("aggrostream output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "accuracy=0.9") && !strings.Contains(text, "accuracy=0.8") {
		t.Errorf("suspicious accuracy in output:\n%s", text)
	}
}

func TestDatagenSarcasmAndOffensive(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test is slow")
	}
	dir := t.TempDir()
	datagen := buildTool(t, dir, "datagen")
	for _, ds := range []string{"sarcasm", "offensive"} {
		out, err := exec.Command(datagen, "-dataset", ds, "-scale", "0.01", "-out",
			filepath.Join(dir, ds+".jsonl")).CombinedOutput()
		if err != nil {
			t.Fatalf("datagen %s: %v\n%s", ds, err, out)
		}
	}
}

func TestRhdriverAgainstRhexecutors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI cluster test is slow")
	}
	dir := t.TempDir()
	datagen := buildTool(t, dir, "datagen")
	rhexecutor := buildTool(t, dir, "rhexecutor")
	rhdriver := buildTool(t, dir, "rhdriver")

	dataFile := filepath.Join(dir, "tweets.jsonl")
	if out, err := exec.Command(datagen, "-dataset", "aggression", "-scale", "0.03",
		"-out", dataFile).CombinedOutput(); err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}

	// Two executors on fixed high ports (retry once on conflict).
	addrs := []string{"127.0.0.1:39761", "127.0.0.1:39762"}
	for _, addr := range addrs {
		cmd := exec.Command(rhexecutor, "-addr", addr, "-workers", "2")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}

	var out []byte
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		out, err = exec.Command(rhdriver,
			"-executors", strings.Join(addrs, ","),
			"-in", dataFile, "-batch", "500", "-tasks", "2").CombinedOutput()
		if err == nil {
			break
		}
		time.Sleep(200 * time.Millisecond) // executors may still be starting
	}
	if err != nil {
		t.Fatalf("rhdriver: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "prequential") || !strings.Contains(text, "processed") {
		t.Fatalf("rhdriver output incomplete:\n%s", text)
	}
}

func TestBenchrunnerList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test is slow")
	}
	dir := t.TempDir()
	benchrunner := buildTool(t, dir, "benchrunner")
	out, err := exec.Command(benchrunner, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("benchrunner -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table1", "table2", "fig4", "fig17"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("benchrunner -list missing %s", id)
		}
	}
}
