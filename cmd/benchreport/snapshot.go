package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

// SnapshotReport is the BENCH_snapshot.json payload: the cost profile of
// compiled inference snapshots. Three gates back the tentpole's promises:
//
//   - ZeroAllocClassify: one classify through Compiled.PredictInto — the
//     lock-free hot path internal/core and both engines drive — allocates
//     nothing.
//   - MeetsTargetSpeedup: compiled classify on the warmed ARF is at least
//     2x faster than the live (locked-path) model.Predict it replaces.
//   - MeetsTargetIncremental: recompiling after a single train step
//     re-flattens strictly fewer trees than the ensemble holds (O(changed
//     trees), not O(model)), and a no-op recompile returns the previous
//     snapshot untouched.
type SnapshotReport struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CPUModel      string  `json:"cpu_model"`
	Benchmarks    []Entry `json:"benchmarks"`

	ClassifyAllocsPerOp int64   `json:"classify_allocs_per_op"`
	ClassifySpeedup     float64 `json:"classify_speedup"` // live Predict ns / compiled PredictInto ns
	PipelineSpeedup     float64 `json:"pipeline_speedup"` // locked Process ns / fast Process ns (informational)

	EnsembleTrees         int  `json:"ensemble_trees"`
	RebuildTreesChanged   int  `json:"rebuild_trees_changed"` // trees re-flattened after one train step
	NoopRebuildReusesPrev bool `json:"noop_rebuild_reuses_prev"`

	ZeroAllocClassify      bool `json:"meets_target_zero_alloc"`
	MeetsTargetSpeedup     bool `json:"meets_target_speedup"`     // >= 2x
	MeetsTargetIncremental bool `json:"meets_target_incremental"` // changed < ensemble, noop free
}

// snapshotSpeedupMin is the CI gate: compiled classify must beat the live
// locked-path predict by at least this factor on the warmed ARF.
const snapshotSpeedupMin = 2.0

// snapshotWarmedARF returns an ARF pipeline trained on the standard
// aggression stream plus a pool of normalized feature vectors drawn from
// an unlabeled continuation of it — the steady state both classify arms
// measure against.
func snapshotWarmedARF() (*core.Pipeline, [][]float64) {
	opts := core.DefaultOptions()
	opts.Model = core.ModelARF
	p := core.NewPipeline(opts)
	p.ProcessAll(twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: 2, Days: 10, NormalCount: 2000, AbusiveCount: 1000, HatefulCount: 200,
	}))

	src := twitterdata.NewUnlabeledSource(3, 10)
	xs := make([][]float64, 2000)
	raw := make([]float64, feature.NumFeatures)
	for i := range xs {
		tw := src.Next()
		p.Extractor().ExtractInto(raw, &tw)
		xs[i] = p.Normalizer().Normalize(raw, nil)
	}
	return p, xs
}

func snapshotBench(out string) error {
	p, xs := snapshotWarmedARF()
	model := p.Model()
	cm := model.(stream.Compilable)
	snap := cm.CompileSnapshot(nil)

	// Arm 1: compiled classify — the exact call the lock-free fast path
	// makes, scratch and votes reused the way the pipeline reuses them.
	votes := make([]float64, snap.NumClasses())
	scratch := make([]float64, snap.ScratchLen())
	compiled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap.PredictInto(votes, scratch, xs[i%len(xs)])
		}
	})

	// Arm 2: the live model's Predict — what the locked path paid per
	// tweet before snapshots existed (pointer-chasing tree walks plus a
	// fresh votes allocation).
	live := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			model.Predict(xs[i%len(xs)])
		}
	})

	// Arm 3/4: whole-pipeline Process on an unlabeled stream, fast path vs
	// the DisableCompiledSnapshots twin. Informational — extraction and
	// user-state dominate, so the end-to-end ratio understates the
	// classify win the gate above measures.
	pool := make([]twitterdata.Tweet, 2000)
	src := twitterdata.NewUnlabeledSource(5, 10)
	for i := range pool {
		pool[i] = src.Next()
	}
	benchPipeline := func(disable bool) testing.BenchmarkResult {
		opts := core.DefaultOptions()
		opts.Model = core.ModelARF
		opts.DisableCompiledSnapshots = disable
		tp := core.NewPipeline(opts)
		tp.ProcessAll(twitterdata.GenerateAggression(twitterdata.AggressionConfig{
			Seed: 2, Days: 10, NormalCount: 2000, AbusiveCount: 1000, HatefulCount: 200,
		}))
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp.Process(&pool[i%len(pool)])
			}
		})
	}
	fastPipe := benchPipeline(false)
	lockedPipe := benchPipeline(true)

	// Incremental rebuild: a Lambda=1 forest keeps some bagging draws at
	// zero, so a single train step must not re-flatten every member. The
	// no-op recompile must return the previous snapshot unchanged.
	forest := stream.NewAdaptiveRandomForest(stream.ARFConfig{
		NumClasses: 3, NumFeatures: feature.NumFeatures, Lambda: 1, Seed: 7,
	})
	for i := range xs {
		forest.Train(ml.Instance{X: xs[i], Label: i % 3, Weight: 1})
	}
	fsnap := forest.CompileSnapshot(nil)
	ensemble := fsnap.NumTrees()
	noopOK := forest.CompileSnapshot(fsnap) == fsnap
	changed := ensemble
	for i := 0; i < 20 && changed >= ensemble; i++ {
		forest.Train(ml.Instance{X: xs[i], Label: i % 3, Weight: 1})
		fsnap = forest.CompileSnapshot(fsnap)
		changed = fsnap.Rebuilt()
	}
	rebuild := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			forest.Train(ml.Instance{X: xs[i%len(xs)], Label: i % 3, Weight: 1})
			fsnap = forest.CompileSnapshot(fsnap)
		}
	})
	full := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			forest.CompileSnapshot(nil)
		}
	})

	rep := SnapshotReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CPUModel:      cpuModel(),
		Benchmarks: []Entry{
			entry("CompiledClassify", compiled),
			entry("LiveClassify", live),
			entry("PipelineProcessFast", fastPipe),
			entry("PipelineProcessLocked", lockedPipe),
			entry("RebuildIncremental", rebuild),
			entry("RebuildFull", full),
		},
		ClassifyAllocsPerOp:   compiled.AllocsPerOp(),
		EnsembleTrees:         ensemble,
		RebuildTreesChanged:   changed,
		NoopRebuildReusesPrev: noopOK,
	}
	if c := float64(compiled.T.Nanoseconds()) / float64(compiled.N); c > 0 {
		rep.ClassifySpeedup = (float64(live.T.Nanoseconds()) / float64(live.N)) / c
	}
	if f := float64(fastPipe.T.Nanoseconds()) / float64(fastPipe.N); f > 0 {
		rep.PipelineSpeedup = (float64(lockedPipe.T.Nanoseconds()) / float64(lockedPipe.N)) / f
	}
	rep.ZeroAllocClassify = rep.ClassifyAllocsPerOp == 0
	rep.MeetsTargetSpeedup = rep.ClassifySpeedup >= snapshotSpeedupMin
	rep.MeetsTargetIncremental = rep.NoopRebuildReusesPrev && rep.RebuildTreesChanged < rep.EnsembleTrees

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("classify: %.0f ns/op compiled (%d allocs/op) vs %.0f ns/op live — %.2fx (gate %.1fx)\n",
		float64(compiled.T.Nanoseconds())/float64(compiled.N), compiled.AllocsPerOp(),
		float64(live.T.Nanoseconds())/float64(live.N), rep.ClassifySpeedup, snapshotSpeedupMin)
	fmt.Printf("pipeline: %.2fx end-to-end; rebuild: %d/%d trees after one train step, noop reuses prev: %v\n",
		rep.PipelineSpeedup, rep.RebuildTreesChanged, rep.EnsembleTrees, rep.NoopRebuildReusesPrev)
	if !rep.ZeroAllocClassify || !rep.MeetsTargetSpeedup || !rep.MeetsTargetIncremental {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: compiled-snapshot gate missed")
		return errBelowTarget
	}
	return nil
}
