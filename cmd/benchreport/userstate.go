package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"redhanded/internal/userstate"
)

// UserstateReport is the BENCH_userstate.json payload: Observe cost at
// one million distinct users under a 100k cap (constant eviction
// pressure), the hot repeat-offender path, and read-side lookups — all
// contended across 16 goroutines.
type UserstateReport struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CPUModel      string  `json:"cpu_model"`
	Goroutines    int     `json:"goroutines"`
	MaxUsers      int     `json:"max_users"`
	DistinctUsers int     `json:"distinct_users"`
	Benchmarks    []Entry `json:"benchmarks"`

	// Outcome of the 1M-distinct-user replay under the cap.
	FinalActive  int   `json:"final_active_users"`
	CapEvictions int64 `json:"cap_evictions"`
	TTLEvictions int64 `json:"ttl_evictions"`
	// BoundedHeld: the store never exceeded MaxUsers. ZeroAllocHot: the
	// steady-state (existing-record) path stays allocation-free.
	BoundedHeld  bool `json:"meets_target_bounded"`
	ZeroAllocHot bool `json:"meets_target_hot_allocs"`
}

const (
	usersDistinct = 1_000_000
	usersCap      = 100_000
	usersGoros    = 16
)

func userstateIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("u%07d", i)
	}
	return ids
}

// runContended runs fn under b.RunParallel with ~usersGoros goroutines.
func runContended(fn func(i int64, s *userstate.Store), s *userstate.Store) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		par := (usersGoros + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
		b.SetParallelism(par)
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				fn(next.Add(1), s)
			}
		})
	})
}

func userstateBench(out string) error {
	ids := userstateIDs(usersDistinct)
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()

	// Cold path: every observation is a distinct user; past the cap each
	// insert CLOCK-evicts. The store is kept for the report's population
	// figures.
	cold := userstate.New(userstate.Config{Shards: 64, MaxUsers: usersCap})
	observe := func(i int64, s *userstate.Store) {
		s.Observe(userstate.Observation{
			UserID:     ids[int(i)%len(ids)],
			At:         time.Unix(0, start+i*int64(50*time.Millisecond)),
			Aggressive: i%3 == 0,
			Confidence: 0.8,
		})
	}
	coldRes := runContended(observe, cold)

	// Replay the full 1M distinct users once to report the bounded-memory
	// outcome regardless of what b.N the benchmark settled on.
	replay := userstate.New(userstate.Config{Shards: 64, MaxUsers: usersCap})
	bounded := true
	for i := 0; i < usersDistinct; i++ {
		observe(int64(i), replay)
		if i%65536 == 0 && replay.Len() > usersCap {
			bounded = false
		}
	}
	if replay.Len() > usersCap {
		bounded = false
	}
	capEv, ttlEv := replay.Evictions()

	// Hot path: a resident working set, no inserts or evictions.
	hot := userstate.New(userstate.Config{Shards: 64, MaxUsers: usersCap})
	hotRes := runContended(func(i int64, s *userstate.Store) {
		s.Observe(userstate.Observation{
			UserID:     ids[int(i)%4096],
			At:         time.Unix(0, start+i*int64(time.Millisecond)),
			Aggressive: i%3 == 0,
			Confidence: 0.8,
		})
	}, hot)

	// Read path against the replayed population.
	lookupRes := runContended(func(i int64, s *userstate.Store) {
		s.Lookup(ids[int(i)%len(ids)])
	}, replay)

	rep := UserstateReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CPUModel:      cpuModel(),
		Goroutines:    usersGoros,
		MaxUsers:      usersCap,
		DistinctUsers: usersDistinct,
		Benchmarks: []Entry{
			entry("UserstateObserve1MDistinct", coldRes),
			entry("UserstateObserveHot", hotRes),
			entry("UserstateLookup", lookupRes),
		},
		FinalActive:  replay.Len(),
		CapEvictions: capEv,
		TTLEvictions: ttlEv,
		BoundedHeld:  bounded,
		ZeroAllocHot: hotRes.AllocsPerOp() == 0,
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("userstate: observe %.0f/s cold (%d allocs/op), %.0f/s hot (%d allocs/op), lookup %.0f/s — %d/%d resident after 1M users (%d evictions)\n",
		rep.Benchmarks[0].TweetsPerS, coldRes.AllocsPerOp(),
		rep.Benchmarks[1].TweetsPerS, hotRes.AllocsPerOp(),
		rep.Benchmarks[2].TweetsPerS,
		rep.FinalActive, rep.MaxUsers, capEv+ttlEv)
	if !rep.BoundedHeld || !rep.ZeroAllocHot {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: userstate missed the bounded-memory / zero-alloc-hot target")
		return errBelowTarget
	}
	return nil
}
