package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/metrics"
	"redhanded/internal/obs"
	"redhanded/internal/twitterdata"
)

// ObsReport is the BENCH_obs.json payload: the cost of the tracing layer on
// the serving hot path. Two gates back the tentpole's promises:
//
//   - ZeroAllocSpan: a full span lifecycle (Begin → SetID → per-stage
//     timestamps → Finish, including ring append, reservoir offer, and
//     histogram observes) allocates nothing.
//   - OverheadOK: the traced pipeline (extract → classify → observe →
//     verdict, instrumented exactly as internal/serve drives it) is at most
//     5% slower than the identical untraced pipeline.
type ObsReport struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CPUModel      string  `json:"cpu_model"`
	Benchmarks    []Entry `json:"benchmarks"`

	SpanAllocsPerOp int64   `json:"span_allocs_per_op"`
	SpanNsPerOp     float64 `json:"span_ns_per_op"`
	OverheadPct     float64 `json:"overhead_pct"` // traced vs untraced pipeline ns/op

	ZeroAllocSpan bool `json:"meets_target_zero_alloc"`
	OverheadOK    bool `json:"meets_target_overhead"` // <= 5%
}

// obsOverheadPctMax is the CI gate: tracing may cost at most this much of
// the untraced pipeline's throughput.
const obsOverheadPctMax = 5.0

func obsTweetPool() []twitterdata.Tweet {
	src := twitterdata.NewUnlabeledSource(3, 10)
	tweets := make([]twitterdata.Tweet, 2000)
	for i := range tweets {
		tweets[i] = src.Next()
	}
	return tweets
}

// obsWarmedPipeline returns a pipeline pre-trained on the same labeled
// stream, so both arms measure the identical steady state.
func obsWarmedPipeline() *core.Pipeline {
	p := core.NewPipeline(core.DefaultOptions())
	p.ProcessAll(twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: 2, Days: 10, NormalCount: 2000, AbusiveCount: 1000, HatefulCount: 200,
	}))
	return p
}

func obsBench(out string) error {
	tweets := obsTweetPool()

	// Arm 1: untraced baseline — the pre-PR hot path.
	pBase := obsWarmedPipeline()
	untraced := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pBase.Process(&tweets[i%len(tweets)])
		}
	})

	// Arm 2: traced — the span lifecycle exactly as internal/serve drives
	// it, with the ring, slow capture, reservoir, and histograms all armed.
	pTraced := obsWarmedPipeline()
	tracer := obs.New(obs.Config{
		Enabled:    true,
		Shards:     1,
		SlowBudget: 25 * time.Millisecond,
		Registry:   metrics.NewRegistry(),
	})
	traced := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tw := &tweets[i%len(tweets)]
			sp := tracer.Begin(0)
			sp.SetID(tw.IDStr)
			pTraced.ProcessTraced(tw, sp)
			sp.Finish()
		}
	})

	// Arm 3: the span lifecycle alone, for the zero-alloc gate — pipeline
	// cost excluded so a stray allocation cannot hide in the noise.
	spanOnly := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tracer.Begin(0)
			sp.SetID("123456789012345678")
			sp.BeginStage(obs.StageExtract)
			sp.BeginStage(obs.StageClassify)
			sp.BeginStage(obs.StageObserve)
			sp.BeginStage(obs.StageVerdict)
			sp.AddExclusive(obs.StageEmit, time.Microsecond)
			sp.Finish()
		}
	})

	rep := ObsReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CPUModel:      cpuModel(),
		Benchmarks: []Entry{
			entry("PipelineUntraced", untraced),
			entry("PipelineTraced", traced),
			entry("SpanLifecycle", spanOnly),
		},
		SpanAllocsPerOp: spanOnly.AllocsPerOp(),
		SpanNsPerOp:     float64(spanOnly.T.Nanoseconds()) / float64(spanOnly.N),
	}
	base := float64(untraced.T.Nanoseconds()) / float64(untraced.N)
	with := float64(traced.T.Nanoseconds()) / float64(traced.N)
	if base > 0 {
		rep.OverheadPct = (with - base) / base * 100
	}
	rep.ZeroAllocSpan = rep.SpanAllocsPerOp == 0
	rep.OverheadOK = rep.OverheadPct <= obsOverheadPctMax

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("pipeline: %.0f ns/op untraced vs %.0f ns/op traced (%.2f%% overhead, gate %.0f%%)\n",
		base, with, rep.OverheadPct, obsOverheadPctMax)
	fmt.Printf("span lifecycle: %.0f ns/op, %d allocs/op (gate 0)\n",
		rep.SpanNsPerOp, rep.SpanAllocsPerOp)
	if !rep.ZeroAllocSpan || !rep.OverheadOK {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: tracing overhead gate missed")
		return errBelowTarget
	}
	return nil
}
