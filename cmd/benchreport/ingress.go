package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/feature"
	"redhanded/internal/ingestlog"
	"redhanded/internal/twitterdata"
)

// IngressReport is the BENCH_ingress.json payload: the cost profile of the
// zero-allocation ingress decode and the content-addressed extraction
// cache under retweet-heavy traffic. Five gates back the tentpole:
//
//   - ZeroAllocDecode: one NDJSON tweet through the pooled Decoder — the
//     exact call /v1/ingest and /v1/classify make per line — allocates
//     nothing (arena chunks amortize to zero via Discard).
//   - ZeroAllocHit: a cache hit (content lookup plus the per-user profile
//     refill) allocates nothing.
//   - MeetsTargetDecodeSpeedup: the fast decoder beats encoding/json by
//     at least 3x on the same lines.
//   - MeetsTargetIngestSpeedup: the full new ingest hot path (fast decode
//     -> raw WAL append -> cached extraction pipeline) sustains at least
//     1.3x the legacy path's throughput (stdlib decode -> binary
//     re-marshal append -> uncached extraction) on a 30%-duplicate
//     stream. Typical measured ratio is ~1.45x; the CI gate sits at 1.3x
//     so scheduler noise cannot flake it.
//   - MeetsTargetHitRatio: that 30%-duplicate stream actually hits the
//     cache at >= 25% (the duplicated texts are recent, so a correctly
//     keyed and invalidated cache converges on the duplicate fraction).
type IngressReport struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CPUModel      string  `json:"cpu_model"`
	Benchmarks    []Entry `json:"benchmarks"`

	DecodeAllocs   int64   `json:"decode_allocs_per_op"`
	CacheHitAllocs int64   `json:"cachehit_allocs_per_op"`
	DecodeSpeedup  float64 `json:"decode_speedup"` // stdlib ns / fast ns
	// IngestSpeedup compares tweets/s through the new and legacy hot
	// paths on the same 30%-duplicate stream; Dup0Speedup is the same
	// comparison with duplication off (decode + append win only).
	IngestSpeedup float64 `json:"ingest_speedup"`
	Dup0Speedup   float64 `json:"ingest_speedup_dup0"`
	CacheHitRatio float64 `json:"cache_hit_ratio"` // at 30% duplicates

	ZeroAllocDecode          bool `json:"meets_target_zero_alloc_decode"`
	ZeroAllocHit             bool `json:"meets_target_zero_alloc_hit"`
	MeetsTargetDecodeSpeedup bool `json:"meets_target_decode_speedup"` // >= 3x
	MeetsTargetIngestSpeedup bool `json:"meets_target_ingest_speedup"` // >= 1.3x
	MeetsTargetHitRatio      bool `json:"meets_target_hit_ratio"`      // >= 0.25
}

const (
	ingressDecodeSpeedupMin = 3.0
	ingressIngestSpeedupMin = 1.3
	ingressHitRatioMin      = 0.25
	// ingressStreamLen is sized so the timed loops never wrap the line
	// pool: a wrapped pool would re-present every text and inflate the
	// cache hit ratio beyond what the duplicate ratio justifies.
	ingressStreamLen = 60000
	ingressOps       = 50000
)

// ingressLines pre-marshals a firehose stream at the given duplicate
// ratio, mirroring what loadgen -duplicate-ratio ships.
func ingressLines(n int, dup float64) [][]byte {
	src := twitterdata.NewUnlabeledSource(9, 10)
	src.SetDuplicateRatio(dup)
	out := make([][]byte, n)
	for i := range out {
		tw := src.Next()
		blob, err := tw.Marshal()
		if err != nil {
			panic(err)
		}
		out[i] = blob
	}
	return out
}

// ingressE2E drives ingressOps tweets through one ingest hot path
// synchronously — decode, WAL append (fsync off), pipeline process — and
// returns the per-tweet cost. fast selects the new path (pooled Decoder,
// raw NDJSON append, extraction cache at its default size); legacy is the
// pre-optimization path (encoding/json, binary re-marshal append, cache
// disabled). The loop is a fixed-count manual measurement rather than
// testing.Benchmark so the adaptive iteration count can never wrap the
// line pool and distort the hit ratio.
func ingressE2E(name string, lines [][]byte, fast bool) (Entry, feature.CacheStats, error) {
	opts := core.DefaultOptions()
	opts.SampleStep = 0
	if !fast {
		opts.FeatureCacheEntries = -1
	}
	p := core.NewPipeline(opts)
	dir, err := os.MkdirTemp("", "benchreport-ingress-*")
	if err != nil {
		return Entry{}, feature.CacheStats{}, err
	}
	defer os.RemoveAll(dir)
	l, err := ingestlog.Open(ingestlog.Options{Dir: dir, Partitions: 1, Fsync: ingestlog.FsyncOff})
	if err != nil {
		return Entry{}, feature.CacheStats{}, err
	}
	defer l.Close()

	dec := twitterdata.GetDecoder()
	defer twitterdata.PutDecoder(dec)
	var encBuf []byte
	var tw twitterdata.Tweet
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for i := 0; i < ingressOps; i++ {
		line := lines[i%len(lines)]
		if fast {
			if err := dec.DecodeInto(&tw, line); err != nil {
				return Entry{}, feature.CacheStats{}, err
			}
			if _, err := l.Append(0, line); err != nil {
				return Entry{}, feature.CacheStats{}, err
			}
		} else {
			tw = twitterdata.Tweet{}
			if err := json.Unmarshal(line, &tw); err != nil {
				return Entry{}, feature.CacheStats{}, err
			}
			encBuf = ingestlog.AppendTweet(encBuf[:0], &tw)
			if _, err := l.Append(0, encBuf); err != nil {
				return Entry{}, feature.CacheStats{}, err
			}
		}
		p.Process(&tw)
		if fast {
			dec.Discard()
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	ns := float64(elapsed.Nanoseconds()) / float64(ingressOps)
	e := Entry{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / ingressOps,
		AllocsPerOp: int64(msAfter.Mallocs-msBefore.Mallocs) / ingressOps,
	}
	if ns > 0 {
		e.TweetsPerS = 1e9 / ns
	}
	return e, p.Extractor().CacheStats(), nil
}

func ingressBench(out string) error {
	plain := ingressLines(2048, 0)

	// Arm 1: the pooled fast decoder, Discard per op — exactly what the
	// ingest handler pays per accepted-then-shed line, and an upper bound
	// on the committed path's decode cost.
	fast := testing.Benchmark(func(b *testing.B) {
		dec := twitterdata.GetDecoder()
		defer twitterdata.PutDecoder(dec)
		var tw twitterdata.Tweet
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dec.DecodeInto(&tw, plain[i%len(plain)]); err != nil {
				b.Fatal(err)
			}
			dec.Discard()
		}
	})

	// Arm 2: encoding/json on the same lines — the decode cost every
	// request paid before this path existed.
	stdlib := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var tw twitterdata.Tweet
			if err := json.Unmarshal(plain[i%len(plain)], &tw); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Arm 3: a cache hit — content lookup plus the per-user profile
	// refill, the work a duplicate text costs instead of full extraction.
	extCfg := feature.DefaultConfig()
	extCfg.CacheEntries = 1024
	ext := feature.NewExtractor(extCfg)
	var hitTweet twitterdata.Tweet
	if err := json.Unmarshal(plain[0], &hitTweet); err != nil {
		return err
	}
	dst := make([]float64, feature.NumFeatures)
	ext.ExtractAndCache(dst, &hitTweet)
	hit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !ext.LookupCached(dst, &hitTweet) {
				b.Fatal("cache miss on a just-inserted text")
			}
		}
	})

	// Arm 4: the full extraction the hit replaces, on the same tweet.
	extract := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ext.ExtractInto(dst, &hitTweet)
		}
	})

	// Arms 5-8: end-to-end hot path, new vs legacy, with and without
	// retweet-style duplication.
	dup := ingressLines(ingressStreamLen, 0.30)
	nodup := ingressLines(ingressStreamLen, 0)
	e2eDup30New, cacheStats, err := ingressE2E("IngestE2EDup30New", dup, true)
	if err != nil {
		return err
	}
	e2eDup30Legacy, _, err := ingressE2E("IngestE2EDup30Legacy", dup, false)
	if err != nil {
		return err
	}
	e2eDup0New, _, err := ingressE2E("IngestE2EDup0New", nodup, true)
	if err != nil {
		return err
	}
	e2eDup0Legacy, _, err := ingressE2E("IngestE2EDup0Legacy", nodup, false)
	if err != nil {
		return err
	}

	rep := IngressReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CPUModel:      cpuModel(),
		Benchmarks: []Entry{
			entry("IngressDecode", fast),
			entry("IngressDecodeStdlib", stdlib),
			entry("FeatCacheHit", hit),
			entry("FeatCacheMissExtract", extract),
			e2eDup30New,
			e2eDup30Legacy,
			e2eDup0New,
			e2eDup0Legacy,
		},
		DecodeAllocs:   fast.AllocsPerOp(),
		CacheHitAllocs: hit.AllocsPerOp(),
	}
	if f := float64(fast.T.Nanoseconds()) / float64(fast.N); f > 0 {
		rep.DecodeSpeedup = (float64(stdlib.T.Nanoseconds()) / float64(stdlib.N)) / f
	}
	if e2eDup30New.NsPerOp > 0 {
		rep.IngestSpeedup = e2eDup30Legacy.NsPerOp / e2eDup30New.NsPerOp
	}
	if e2eDup0New.NsPerOp > 0 {
		rep.Dup0Speedup = e2eDup0Legacy.NsPerOp / e2eDup0New.NsPerOp
	}
	if lookups := cacheStats.Hits + cacheStats.Misses; lookups > 0 {
		rep.CacheHitRatio = float64(cacheStats.Hits) / float64(lookups)
	}
	rep.ZeroAllocDecode = rep.DecodeAllocs == 0
	rep.ZeroAllocHit = rep.CacheHitAllocs == 0
	rep.MeetsTargetDecodeSpeedup = rep.DecodeSpeedup >= ingressDecodeSpeedupMin
	rep.MeetsTargetIngestSpeedup = rep.IngestSpeedup >= ingressIngestSpeedupMin
	rep.MeetsTargetHitRatio = rep.CacheHitRatio >= ingressHitRatioMin

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("decode: %.0f ns/op fast (%d allocs/op) vs %.0f ns/op stdlib — %.2fx (gate %.1fx)\n",
		float64(fast.T.Nanoseconds())/float64(fast.N), fast.AllocsPerOp(),
		float64(stdlib.T.Nanoseconds())/float64(stdlib.N), rep.DecodeSpeedup, ingressDecodeSpeedupMin)
	fmt.Printf("cache hit: %.0f ns/op (%d allocs/op) vs %.0f ns/op full extraction\n",
		float64(hit.T.Nanoseconds())/float64(hit.N), hit.AllocsPerOp(),
		float64(extract.T.Nanoseconds())/float64(extract.N))
	fmt.Printf("ingest e2e @30%% duplicates: %.0f tweets/s new vs %.0f tweets/s legacy — %.2fx (gate %.1fx, hit ratio %.2f)\n",
		e2eDup30New.TweetsPerS, e2eDup30Legacy.TweetsPerS, rep.IngestSpeedup, ingressIngestSpeedupMin, rep.CacheHitRatio)
	fmt.Printf("ingest e2e @0%% duplicates: %.2fx (decode + raw-append win alone)\n", rep.Dup0Speedup)
	if !rep.ZeroAllocDecode || !rep.ZeroAllocHit || !rep.MeetsTargetDecodeSpeedup ||
		!rep.MeetsTargetIngestSpeedup || !rep.MeetsTargetHitRatio {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: ingress gate missed")
		return errBelowTarget
	}
	return nil
}
