package main

import (
	"fmt"
	"os"
	"sort"

	"redhanded/internal/analysis"
)

// noallocGates is the authoritative pairing between the //redvet:noalloc
// gate names annotated in source and the benchreport measurements that
// enforce 0 allocs/op for those functions. -verify-noalloc diffs this
// table against the annotations the analysis driver actually indexes, in
// both directions: deleting any single annotation (or inventing a gate
// no benchmark measures) fails the check. When a hot path genuinely
// changes shape, this table is the reviewed place to record it.
var noallocGates = map[string]struct {
	measuredBy string   // the benchreport mode + field that gates allocs
	funcs      []string // qualified functions that must carry the gate
}{
	"CompiledClassify": {
		measuredBy: "benchreport -snapshot: ZeroAllocClassify / meets_target_zero_alloc",
		funcs: []string{
			"redhanded/internal/stream.(*Compiled).PredictInto",
			"redhanded/internal/stream.(*Compiled).predictSLR",
			"redhanded/internal/stream.(*compiledTree).naiveBayesInto",
			"redhanded/internal/stream.(*compiledTree).predictInto",
		},
	},
	"FeaturePathFast": {
		measuredBy: "benchreport (default): ExtractAllocsFast / MeetsTargetAllocs",
		funcs: []string{
			"redhanded/internal/feature.(*Extractor).ExtractInto",
			"redhanded/internal/feature.(*Extractor).extractFast",
		},
	},
	"FeaturePathScan": {
		measuredBy: "benchreport (default): FeaturePathScan entry",
		funcs: []string{
			"redhanded/internal/text.(*Scratch).Reset",
			"redhanded/internal/text.(*Scratch).Scan",
			"redhanded/internal/text.(*Scratch).field",
		},
	},
	"UserstateObserveHot": {
		measuredBy: "benchreport -userstate: ZeroAllocHot",
		funcs: []string{
			"redhanded/internal/userstate.(*Store).Observe",
			"redhanded/internal/userstate.(*Store).observeLocked",
		},
	},
	"SpanLifecycle": {
		measuredBy: "benchreport -obs: ZeroAllocSpan",
		funcs: []string{
			"redhanded/internal/obs.(*Span).Add",
			"redhanded/internal/obs.(*Span).AddExclusive",
			"redhanded/internal/obs.(*Span).BeginStage",
			"redhanded/internal/obs.(*Span).EndStage",
			"redhanded/internal/obs.(*Span).Finish",
			"redhanded/internal/obs.(*Span).SetID",
			"redhanded/internal/obs.(*Tracer).Abort",
			"redhanded/internal/obs.(*Tracer).Begin",
			"redhanded/internal/obs.(*Tracer).finish",
			"redhanded/internal/obs.(*Tracer).now",
			"redhanded/internal/obs.(*reservoir).next",
			"redhanded/internal/obs.(*reservoir).offer",
			"redhanded/internal/obs.(*ring).append",
			"redhanded/internal/obs.(*slowRing).append",
			"redhanded/internal/obs.encodeEntry",
		},
	},
	"IngressDecode": {
		measuredBy: "benchreport -ingress: DecodeAllocs / meets_target_zero_alloc_decode",
		funcs: []string{
			"redhanded/internal/twitterdata.(*Decoder).DecodeInto",
			"redhanded/internal/twitterdata.(*Decoder).Discard",
			"redhanded/internal/twitterdata.(*Decoder).decodeTweet",
			"redhanded/internal/twitterdata.(*Decoder).decodeUser",
			"redhanded/internal/twitterdata.(*Decoder).getu4",
			"redhanded/internal/twitterdata.(*Decoder).intField",
			"redhanded/internal/twitterdata.(*Decoder).intern",
			"redhanded/internal/twitterdata.(*Decoder).literalNull",
			"redhanded/internal/twitterdata.(*Decoder).objectNext",
			"redhanded/internal/twitterdata.(*Decoder).readKey",
			"redhanded/internal/twitterdata.(*Decoder).skipNumber",
			"redhanded/internal/twitterdata.(*Decoder).skipString",
			"redhanded/internal/twitterdata.(*Decoder).skipValue",
			"redhanded/internal/twitterdata.(*Decoder).skipWS",
			"redhanded/internal/twitterdata.(*Decoder).stringField",
			"redhanded/internal/twitterdata.(*Decoder).unquote",
			"redhanded/internal/twitterdata.(*Decoder).unquoteSlow",
			"redhanded/internal/twitterdata.foldsToASCII",
			"redhanded/internal/twitterdata.keyMatches",
		},
	},
	"FeatCacheLookup": {
		measuredBy: "benchreport -ingress: CacheHitAllocs / meets_target_zero_alloc_hit",
		funcs: []string{
			"redhanded/internal/feature.(*Extractor).LookupCached",
			"redhanded/internal/feature.(*Extractor).fillProfile",
			"redhanded/internal/feature.(*extractCache).lookup",
			"redhanded/internal/feature.fnv64aString",
		},
	},
	"SegmentRead": {
		measuredBy: "benchreport -ingestlog: MeetsTargetAllocs (segment read)",
		funcs: []string{
			"redhanded/internal/ingestlog.(*Reader).Next",
			"redhanded/internal/ingestlog.(*decoder).byte",
			"redhanded/internal/ingestlog.(*decoder).int",
			"redhanded/internal/ingestlog.(*decoder).str",
			"redhanded/internal/ingestlog.DecodeTweet",
			"redhanded/internal/ingestlog.frameAt",
			"redhanded/internal/ingestlog.scanSegment",
		},
	},
}

// verifyNoalloc cross-references the //redvet:noalloc annotations the
// analysis driver indexes against the gate table above. It must run
// from the module root (CI does; `go run ./cmd/benchreport` from a
// checkout does too).
func verifyNoalloc() error {
	prog, err := analysis.Load(".", []string{"./..."})
	if err != nil {
		return fmt.Errorf("loading repo for annotation index: %w", err)
	}
	index := analysis.BuildIndex(prog)

	annotated := make(map[string]map[string]bool) // gate -> funcs carrying it
	for _, r := range index.Regions {
		if r.Gate == "" {
			continue
		}
		if annotated[r.Gate] == nil {
			annotated[r.Gate] = make(map[string]bool)
		}
		annotated[r.Gate][r.FuncName] = true
	}

	var problems []string
	for gate, want := range noallocGates {
		have := annotated[gate]
		for _, fn := range want.funcs {
			if !have[fn] {
				problems = append(problems, fmt.Sprintf(
					"%s: //redvet:noalloc gate=%s annotation missing (its allocs are gated by %s)",
					fn, gate, want.measuredBy))
			}
		}
		for fn := range have {
			found := false
			for _, w := range want.funcs {
				if w == fn {
					found = true
					break
				}
			}
			if !found {
				problems = append(problems, fmt.Sprintf(
					"%s: carries gate=%s but is not in the verified gate table (add it to cmd/benchreport/verify.go)",
					fn, gate))
			}
		}
	}
	for gate := range annotated {
		if _, ok := noallocGates[gate]; !ok {
			problems = append(problems, fmt.Sprintf(
				"gate=%s is annotated in source but no benchreport measurement gates it", gate))
		}
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "verify-noalloc:", p)
	}
	if len(problems) > 0 {
		return errBelowTarget
	}

	gates := make([]string, 0, len(noallocGates))
	total := 0
	for g, w := range noallocGates {
		gates = append(gates, g)
		total += len(w.funcs)
	}
	sort.Strings(gates)
	fmt.Printf("verify-noalloc: %d annotated functions across %d gates verified: %v\n",
		total, len(gates), gates)
	return nil
}
