package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/engine"
	"redhanded/internal/twitterdata"
)

// ClusterRun is one arm of the before/after measurement: a warmed pipeline
// driven through a steady-state unlabeled stream with either the v1 full
// re-broadcast or the delta protocol, for one model kind.
type ClusterRun struct {
	Model                string  `json:"model"` // "ht" or "arf"
	Mode                 string  `json:"mode"`  // "full" or "delta"
	SteadyBatches        int     `json:"steady_batches"`
	SteadyBroadcastBytes int64   `json:"steady_broadcast_bytes"`
	BroadcastPerBatch    int64   `json:"broadcast_bytes_per_batch"`
	DataBytes            int64   `json:"data_bytes"`
	ThroughputTweetsPerS float64 `json:"throughput_tweets_per_sec"`
	MeanBatchLatencyMs   float64 `json:"mean_batch_latency_ms"`
}

// ClusterReport is the BENCH_cluster.json payload: steady-state broadcast
// cost per batch with an unchanged model/vocab, before and after delta
// broadcasts — for the HT (whole-model elision) and the ARF (per-member
// elision on top of it).
type ClusterReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	CPUModel      string `json:"cpu_model"`

	Executors     int   `json:"executors"`
	BatchSize     int   `json:"batch_size"`
	WarmupTweets  int   `json:"warmup_tweets"`
	SteadyTweets  int64 `json:"steady_tweets"`
	ModelBlobSize int   `json:"model_blob_bytes"`
	VocabSize     int   `json:"vocab_words"`

	ARFWarmupTweets int   `json:"arf_warmup_tweets"`
	ARFSteadyTweets int64 `json:"arf_steady_tweets"`
	ARFEnsembleSize int   `json:"arf_ensemble_size"`
	ARFForestBytes  int   `json:"arf_forest_broadcast_bytes"`

	Runs []ClusterRun `json:"runs"`
	// BroadcastReduction is full/delta steady-state broadcast bytes per
	// batch for the HT arm; the acceptance target is >= 10x.
	BroadcastReduction   float64 `json:"broadcast_reduction"`
	MeetsTargetReduction bool    `json:"meets_target_reduction"`
	// ARFElisionRatio is delta/full steady-state broadcast bytes per batch
	// for the ARF arm; per-member elision demands <= 1/EnsembleSize.
	ARFElisionRatio       float64 `json:"arf_elision_ratio"`
	MeetsARFElisionTarget bool    `json:"meets_arf_elision_target"`
}

const (
	clusterExecutors    = 3
	clusterBatch        = 1000
	clusterSteadyTweets = 80000

	arfEnsembleSize = 10
	arfSteadyTweets = 80000
)

// clusterWorkload builds the labeled warmup set that grows the model and
// the adaptive vocabulary to realistic sizes before measuring (the paper's
// labeled corpus is ~86k tweets; the HT arm uses half that scale).
func clusterWorkload(scaleDown int) []twitterdata.Tweet {
	return twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: 7, Days: 10,
		NormalCount: 27000 / scaleDown, AbusiveCount: 13500 / scaleDown, HatefulCount: 2700 / scaleDown,
	})
}

func clusterOptions(model string) core.Options {
	opts := core.DefaultOptions()
	if model == "arf" {
		opts.Model = core.ModelARF
		opts.ARF.EnsembleSize = arfEnsembleSize
	}
	return opts
}

// runClusterArm warms a fresh pipeline over the labeled set, then measures
// the steady-state unlabeled phase (model and vocabulary unchanged) with
// the given wire mode. Fresh executors per arm keep the arms independent.
func runClusterArm(model string, warmup []twitterdata.Tweet, steadyTweets int64, disableDelta bool) (ClusterRun, *core.Pipeline, error) {
	mode := "delta"
	if disableDelta {
		mode = "full"
	}
	run := ClusterRun{Model: model, Mode: mode}

	addrs := make([]string, clusterExecutors)
	for i := range addrs {
		ex, err := engine.StartExecutor("127.0.0.1:0", runtime.NumCPU())
		if err != nil {
			return run, nil, err
		}
		defer ex.Close()
		addrs[i] = ex.Addr()
	}
	cfg := engine.ClusterConfig{
		Executors: addrs, BatchSize: clusterBatch,
		TasksPerExecutor: runtime.NumCPU(), DisableDelta: disableDelta,
	}
	p := core.NewPipeline(clusterOptions(model))
	if _, err := engine.RunCluster(p, engine.NewSliceSource(warmup), cfg); err != nil {
		return run, nil, fmt.Errorf("warmup (%s/%s): %w", model, mode, err)
	}

	steady := engine.NewLimitSource(
		engine.NewUnlabeledAdapter(twitterdata.NewUnlabeledSource(11, 10)), steadyTweets)
	stats, err := engine.RunCluster(p, steady, cfg)
	if err != nil {
		return run, nil, fmt.Errorf("steady (%s/%s): %w", model, mode, err)
	}
	run.SteadyBatches = stats.Batches
	run.SteadyBroadcastBytes = stats.BroadcastBytes
	if stats.Batches > 0 {
		run.BroadcastPerBatch = stats.BroadcastBytes / int64(stats.Batches)
	}
	run.DataBytes = stats.DataBytes
	run.ThroughputTweetsPerS = stats.Throughput()
	run.MeanBatchLatencyMs = float64(stats.MeanBatchLatency) / float64(time.Millisecond)
	return run, p, nil
}

func modelBlobSize(p *core.Pipeline) int {
	if m, ok := p.Model().(interface{ MarshalBinary() ([]byte, error) }); ok {
		if blob, err := m.MarshalBinary(); err == nil {
			return len(blob)
		}
	}
	return 0
}

// clusterBench runs the HT and ARF arms and writes BENCH_cluster.json.
func clusterBench(out string) error {
	warmup := clusterWorkload(2)
	arfWarmup := warmup
	rep := ClusterReport{
		GeneratedUnix:   time.Now().Unix(),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		CPUModel:        cpuModel(),
		Executors:       clusterExecutors,
		BatchSize:       clusterBatch,
		WarmupTweets:    len(warmup),
		SteadyTweets:    clusterSteadyTweets,
		ARFWarmupTweets: len(arfWarmup),
		ARFSteadyTweets: arfSteadyTweets,
		ARFEnsembleSize: arfEnsembleSize,
	}

	htFull, _, err := runClusterArm("ht", warmup, clusterSteadyTweets, true)
	if err != nil {
		return err
	}
	htDelta, htP, err := runClusterArm("ht", warmup, clusterSteadyTweets, false)
	if err != nil {
		return err
	}
	arfFull, _, err := runClusterArm("arf", arfWarmup, arfSteadyTweets, true)
	if err != nil {
		return err
	}
	arfDelta, arfP, err := runClusterArm("arf", arfWarmup, arfSteadyTweets, false)
	if err != nil {
		return err
	}
	rep.Runs = []ClusterRun{htFull, htDelta, arfFull, arfDelta}
	rep.VocabSize = htP.Extractor().BoW().Size()
	rep.ModelBlobSize = modelBlobSize(htP)
	rep.ARFForestBytes = modelBlobSize(arfP)
	if htDelta.BroadcastPerBatch > 0 {
		rep.BroadcastReduction = float64(htFull.BroadcastPerBatch) / float64(htDelta.BroadcastPerBatch)
	}
	rep.MeetsTargetReduction = rep.BroadcastReduction >= 10
	if arfFull.BroadcastPerBatch > 0 {
		rep.ARFElisionRatio = float64(arfDelta.BroadcastPerBatch) / float64(arfFull.BroadcastPerBatch)
	}
	rep.MeetsARFElisionTarget = rep.ARFElisionRatio > 0 &&
		rep.ARFElisionRatio <= 1/float64(arfEnsembleSize)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster steady-state broadcast (HT): %d B/batch full vs %d B/batch delta — %.1fx reduction (model %d B, vocab %d words)\n",
		htFull.BroadcastPerBatch, htDelta.BroadcastPerBatch, rep.BroadcastReduction, rep.ModelBlobSize, rep.VocabSize)
	fmt.Printf("cluster steady-state broadcast (ARF, %d members): %d B/batch full vs %d B/batch delta — ratio %.4f (target <= %.4f; forest %d B)\n",
		arfEnsembleSize, arfFull.BroadcastPerBatch, arfDelta.BroadcastPerBatch,
		rep.ARFElisionRatio, 1/float64(arfEnsembleSize), rep.ARFForestBytes)
	fmt.Printf("cluster steady-state throughput: HT %.0f tweets/s full vs %.0f delta; ARF %.0f full vs %.0f delta\n",
		htFull.ThroughputTweetsPerS, htDelta.ThroughputTweetsPerS,
		arfFull.ThroughputTweetsPerS, arfDelta.ThroughputTweetsPerS)
	if !rep.MeetsTargetReduction {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: below the 10x steady-state broadcast reduction target")
		return errBelowTarget
	}
	if !rep.MeetsARFElisionTarget {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: ARF steady-state broadcast above 1/EnsembleSize of the full forest")
		return errBelowTarget
	}
	return nil
}
