package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/engine"
	"redhanded/internal/twitterdata"
)

// ClusterRun is one arm of the before/after measurement: the same warmed
// pipeline driven through a steady-state unlabeled stream with either the
// v1 full re-broadcast or the v2 delta protocol.
type ClusterRun struct {
	Mode                 string  `json:"mode"` // "full" or "delta"
	SteadyBatches        int     `json:"steady_batches"`
	SteadyBroadcastBytes int64   `json:"steady_broadcast_bytes"`
	BroadcastPerBatch    int64   `json:"broadcast_bytes_per_batch"`
	DataBytes            int64   `json:"data_bytes"`
	ThroughputTweetsPerS float64 `json:"throughput_tweets_per_sec"`
	MeanBatchLatencyMs   float64 `json:"mean_batch_latency_ms"`
}

// ClusterReport is the BENCH_cluster.json payload: steady-state broadcast
// cost per batch with an unchanged model/vocab, before and after delta
// broadcasts.
type ClusterReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`

	Executors     int   `json:"executors"`
	BatchSize     int   `json:"batch_size"`
	WarmupTweets  int   `json:"warmup_tweets"`
	SteadyTweets  int64 `json:"steady_tweets"`
	ModelBlobSize int   `json:"model_blob_bytes"`
	VocabSize     int   `json:"vocab_words"`

	Runs []ClusterRun `json:"runs"`
	// BroadcastReduction is full/delta steady-state broadcast bytes per
	// batch; the acceptance target is >= 10x.
	BroadcastReduction   float64 `json:"broadcast_reduction"`
	MeetsTargetReduction bool    `json:"meets_target_reduction"`
}

const (
	clusterExecutors    = 3
	clusterBatch        = 1000
	clusterSteadyTweets = 80000
)

// clusterWorkload builds the labeled warmup set that grows the HT model
// and the adaptive vocabulary to realistic sizes before measuring (the
// paper's labeled corpus is ~86k tweets; this is half that scale).
func clusterWorkload() []twitterdata.Tweet {
	return twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: 7, Days: 10, NormalCount: 27000, AbusiveCount: 13500, HatefulCount: 2700,
	})
}

// runClusterArm warms a fresh pipeline over the labeled set, then measures
// the steady-state unlabeled phase (model and vocabulary unchanged) with
// the given wire mode. Fresh executors per arm keep the arms independent.
func runClusterArm(warmup []twitterdata.Tweet, disableDelta bool) (ClusterRun, *core.Pipeline, error) {
	mode := "delta"
	if disableDelta {
		mode = "full"
	}
	run := ClusterRun{Mode: mode}

	addrs := make([]string, clusterExecutors)
	for i := range addrs {
		ex, err := engine.StartExecutor("127.0.0.1:0", runtime.NumCPU())
		if err != nil {
			return run, nil, err
		}
		defer ex.Close()
		addrs[i] = ex.Addr()
	}
	cfg := engine.ClusterConfig{
		Executors: addrs, BatchSize: clusterBatch,
		TasksPerExecutor: runtime.NumCPU(), DisableDelta: disableDelta,
	}
	p := core.NewPipeline(core.DefaultOptions())
	if _, err := engine.RunCluster(p, engine.NewSliceSource(warmup), cfg); err != nil {
		return run, nil, fmt.Errorf("warmup (%s): %w", mode, err)
	}

	steady := engine.NewLimitSource(
		engine.NewUnlabeledAdapter(twitterdata.NewUnlabeledSource(11, 10)), clusterSteadyTweets)
	stats, err := engine.RunCluster(p, steady, cfg)
	if err != nil {
		return run, nil, fmt.Errorf("steady (%s): %w", mode, err)
	}
	run.SteadyBatches = stats.Batches
	run.SteadyBroadcastBytes = stats.BroadcastBytes
	if stats.Batches > 0 {
		run.BroadcastPerBatch = stats.BroadcastBytes / int64(stats.Batches)
	}
	run.DataBytes = stats.DataBytes
	run.ThroughputTweetsPerS = stats.Throughput()
	run.MeanBatchLatencyMs = float64(stats.MeanBatchLatency) / float64(time.Millisecond)
	return run, p, nil
}

// clusterBench runs both arms and writes BENCH_cluster.json.
func clusterBench(out string) error {
	warmup := clusterWorkload()
	rep := ClusterReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Executors:     clusterExecutors,
		BatchSize:     clusterBatch,
		WarmupTweets:  len(warmup),
		SteadyTweets:  clusterSteadyTweets,
	}

	full, _, err := runClusterArm(warmup, true)
	if err != nil {
		return err
	}
	delta, p, err := runClusterArm(warmup, false)
	if err != nil {
		return err
	}
	rep.Runs = []ClusterRun{full, delta}
	rep.VocabSize = p.Extractor().BoW().Size()
	if m, ok := p.Model().(interface{ MarshalBinary() ([]byte, error) }); ok {
		if blob, err := m.MarshalBinary(); err == nil {
			rep.ModelBlobSize = len(blob)
		}
	}
	if delta.BroadcastPerBatch > 0 {
		rep.BroadcastReduction = float64(full.BroadcastPerBatch) / float64(delta.BroadcastPerBatch)
	}
	rep.MeetsTargetReduction = rep.BroadcastReduction >= 10

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster steady-state broadcast: %d B/batch full vs %d B/batch delta — %.1fx reduction (model %d B, vocab %d words)\n",
		full.BroadcastPerBatch, delta.BroadcastPerBatch, rep.BroadcastReduction, rep.ModelBlobSize, rep.VocabSize)
	fmt.Printf("cluster steady-state throughput: %.0f tweets/s full vs %.0f tweets/s delta\n",
		full.ThroughputTweetsPerS, delta.ThroughputTweetsPerS)
	if !rep.MeetsTargetReduction {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: below the 10x steady-state broadcast reduction target")
		return errBelowTarget
	}
	return nil
}
