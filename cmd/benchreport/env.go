package main

import (
	"os"
	"runtime"
	"strings"
)

// cpuModel best-effort-identifies the host CPU so two BENCH_*.json files
// can be ruled comparable (or not) without out-of-band notes. Linux
// exposes it in /proc/cpuinfo; elsewhere (or on stripped containers) the
// architecture stands in.
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			// x86 says "model name", arm64 often only "Hardware".
			if rest, ok := strings.CutPrefix(line, "model name"); ok {
				if i := strings.IndexByte(rest, ':'); i >= 0 {
					return strings.TrimSpace(rest[i+1:])
				}
			}
			if rest, ok := strings.CutPrefix(line, "Hardware"); ok {
				if i := strings.IndexByte(rest, ':'); i >= 0 {
					return strings.TrimSpace(rest[i+1:])
				}
			}
		}
	}
	return runtime.GOARCH + " (cpu model unavailable)"
}
