package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"redhanded/internal/feature"
	"redhanded/internal/ingestlog"
	"redhanded/internal/text"
	"redhanded/internal/twitterdata"
)

// IngestlogReport is the BENCH_ingestlog.json payload: append throughput
// under each fsync policy, the mmap'd segment-read hot path (which must
// not allocate), and disk replay measured two ways — feeding the
// single-pass text scanner (the replay fast path the serving layer's
// recovery uses for log-only records is bounded by full extraction, but
// the scan path is the framework's throughput ceiling), and feeding full
// feature extraction.
type IngestlogReport struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CPUModel      string  `json:"cpu_model"`
	Records       int     `json:"records"`
	SegmentBytes  int64   `json:"segment_bytes"`
	Benchmarks    []Entry `json:"benchmarks"`

	// ReplayScanTweetsPerS is the headline: segment read + zero-copy
	// decode + text.Scratch scan, straight off the mmap'd bytes.
	ReplayScanTweetsPerS float64 `json:"replay_scan_tweets_per_sec"`
	// ReplayExtractTweetsPerS runs the same records through full feature
	// extraction; ScanShare is how much of the in-memory scan ceiling the
	// disk replay retains (1.0 = disk adds nothing).
	ReplayExtractTweetsPerS float64 `json:"replay_extract_tweets_per_sec"`
	ScanShare               float64 `json:"replay_scan_share_of_ceiling"`
	// MeetsTargetReplay: scan-path replay sustains >= 150k tweets/s.
	// MeetsTargetAllocs: the segment-read hot path performs 0 allocs/op.
	MeetsTargetReplay bool `json:"meets_target_replay"`
	MeetsTargetAllocs bool `json:"meets_target_read_allocs"`
}

const (
	ingestlogRecords   = 20_000
	ingestlogSegBytes  = 4 << 20
	replayTargetPerSec = 150_000
)

// buildBenchLog writes n generator tweets into a fresh single-partition
// log under dir and returns the encoded payload sizes' total.
func buildBenchLog(dir string, n int, fsync ingestlog.FsyncPolicy) error {
	l, err := ingestlog.Open(ingestlog.Options{
		Dir: dir, Partitions: 1, SegmentBytes: ingestlogSegBytes, Fsync: fsync,
	})
	if err != nil {
		return err
	}
	g := twitterdata.NewGenerator(1, 10)
	var buf []byte
	for i := 0; i < n; i++ {
		tw := g.Tweet(i%3, i%10)
		buf = ingestlog.AppendTweet(buf[:0], &tw)
		if _, err := l.Append(0, buf); err != nil {
			l.Close()
			return err
		}
	}
	return l.Close()
}

// benchAppend measures append throughput under one fsync policy.
func benchAppend(fsync ingestlog.FsyncPolicy) (testing.BenchmarkResult, error) {
	dir, err := os.MkdirTemp("", "benchlog-append-*")
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer os.RemoveAll(dir)
	l, err := ingestlog.Open(ingestlog.Options{
		Dir: dir, Partitions: 1, SegmentBytes: ingestlogSegBytes,
		Fsync: fsync, MaxUnsynced: -1, // measure writes, not backpressure
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer l.Close()
	g := twitterdata.NewGenerator(1, 10)
	tweets := make([]twitterdata.Tweet, 1000)
	for i := range tweets {
		tweets[i] = g.Tweet(i%3, i%10)
	}
	var buf []byte
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = ingestlog.AppendTweet(buf[:0], &tweets[i%len(tweets)])
			if _, err := l.Append(0, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	return res, nil
}

// replayBench iterates the log's records repeatedly, handing each decoded
// record to consume (zero-copy decode: strings alias the mapped segment).
func replayBench(dir string, consume func(*twitterdata.Tweet)) (testing.BenchmarkResult, error) {
	r, err := ingestlog.OpenPartitionReader(dir, 0)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer r.Close()
	var tw twitterdata.Tweet
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			payload, _, err := r.Next()
			if err == io.EOF {
				if err := r.SeekTo(0); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := ingestlog.DecodeTweet(payload, &tw, false); err != nil {
				b.Fatal(err)
			}
			consume(&tw)
		}
	})
	return res, nil
}

func ingestlogBench(out string) error {
	dir, err := os.MkdirTemp("", "benchlog-read-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := buildBenchLog(dir, ingestlogRecords, ingestlog.FsyncOff); err != nil {
		return err
	}

	appendOff, err := benchAppend(ingestlog.FsyncOff)
	if err != nil {
		return err
	}
	appendInterval, err := benchAppend(ingestlog.FsyncInterval)
	if err != nil {
		return err
	}
	appendAlways, err := benchAppend(ingestlog.FsyncAlways)
	if err != nil {
		return err
	}

	// Segment-read hot path alone: frame walk + checksum over mmap.
	segRead := func() testing.BenchmarkResult {
		r, err := ingestlog.OpenPartitionReader(dir, 0)
		if err != nil {
			panic(err)
		}
		defer r.Close()
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := r.Next()
				if err == io.EOF {
					if err := r.SeekTo(0); err != nil {
						b.Fatal(err)
					}
					continue
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}()

	var sc text.Scratch
	replayScan, err := replayBench(dir, func(tw *twitterdata.Tweet) { sc.Scan(tw.Text) })
	if err != nil {
		return err
	}
	ext := feature.NewExtractor(feature.DefaultConfig())
	dst := make([]float64, feature.NumFeatures)
	replayExtract, err := replayBench(dir, func(tw *twitterdata.Tweet) { ext.ExtractInto(dst, tw) })
	if err != nil {
		return err
	}

	// The in-memory scan ceiling over the same tweets, for the disk-vs-RAM
	// share.
	tweets := benchTweets(2000)
	scanCeiling := testing.Benchmark(func(b *testing.B) {
		var sc text.Scratch
		for i := 0; i < b.N; i++ {
			sc.Scan(tweets[i%len(tweets)].Text)
		}
	})

	rep := IngestlogReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CPUModel:      cpuModel(),
		Records:       ingestlogRecords,
		SegmentBytes:  ingestlogSegBytes,
		Benchmarks: []Entry{
			entry("IngestlogAppendFsyncOff", appendOff),
			entry("IngestlogAppendFsyncInterval", appendInterval),
			entry("IngestlogAppendFsyncAlways", appendAlways),
			entry("IngestlogSegmentRead", segRead),
			entry("IngestlogReplayScan", replayScan),
			entry("IngestlogReplayExtract", replayExtract),
			entry("ScanCeilingInMemory", scanCeiling),
		},
	}
	rep.ReplayScanTweetsPerS = entry("", replayScan).TweetsPerS
	rep.ReplayExtractTweetsPerS = entry("", replayExtract).TweetsPerS
	if ceil := entry("", scanCeiling).TweetsPerS; ceil > 0 {
		rep.ScanShare = rep.ReplayScanTweetsPerS / ceil
	}
	rep.MeetsTargetReplay = rep.ReplayScanTweetsPerS >= replayTargetPerSec
	rep.MeetsTargetAllocs = segRead.AllocsPerOp() == 0

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("ingestlog: append %.0f/s (off) %.0f/s (interval) %.0f/s (always); read %d allocs/op; replay %.0f tweets/s scan (%.0f%% of RAM ceiling), %.0f tweets/s full extract\n",
		entry("", appendOff).TweetsPerS, entry("", appendInterval).TweetsPerS, entry("", appendAlways).TweetsPerS,
		segRead.AllocsPerOp(), rep.ReplayScanTweetsPerS, 100*rep.ScanShare, rep.ReplayExtractTweetsPerS)
	if !rep.MeetsTargetReplay || !rep.MeetsTargetAllocs {
		fmt.Fprintf(os.Stderr, "benchreport: WARNING: replay %.0f tweets/s (target %d) or read allocs %d (target 0) missed\n",
			rep.ReplayScanTweetsPerS, replayTargetPerSec, segRead.AllocsPerOp())
		return errBelowTarget
	}
	return nil
}
