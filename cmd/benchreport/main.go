// Command benchreport runs the repo's headline benchmarks programmatically
// and emits machine-readable reports, so successive PRs can track the perf
// trajectory without parsing `go test -bench` output.
//
// Usage:
//
//	go run ./cmd/benchreport [-out BENCH_featurepath.json]
//	go run ./cmd/benchreport -cluster [-out BENCH_cluster.json]
//	go run ./cmd/benchreport -ingestlog [-out BENCH_ingestlog.json]
//
// The default mode benchmarks the text→feature fast path; -cluster spins
// up an in-process 3-executor cluster and measures the steady-state
// broadcast bytes per batch before (full re-broadcast) and after (delta)
// the v2 wire protocol, plus throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"redhanded/internal/feature"
	"redhanded/internal/text"
	"redhanded/internal/twitterdata"
)

// Entry is one benchmark's result.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	TweetsPerS  float64 `json:"tweets_per_sec"`
}

// Report is the BENCH_featurepath.json payload.
type Report struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CPUModel      string  `json:"cpu_model"`
	Benchmarks    []Entry `json:"benchmarks"`
	// Headline ratios: fast path vs the multi-pass legacy reference.
	ExtractSpeedup     float64 `json:"extract_speedup"`
	ExtractAllocsFast  int64   `json:"extract_allocs_fast"`
	ExtractAllocsSlow  int64   `json:"extract_allocs_legacy"`
	ScanSpeedup        float64 `json:"scan_speedup"`
	MeetsTargetSpeedup bool    `json:"meets_target_speedup"` // >= 2x
	MeetsTargetAllocs  bool    `json:"meets_target_allocs"`  // >= 5x fewer
}

func benchTweets(n int) []twitterdata.Tweet {
	g := twitterdata.NewGenerator(1, 10)
	out := make([]twitterdata.Tweet, n)
	for i := range out {
		out[i] = g.Tweet(i%3, i%10)
	}
	return out
}

func entry(name string, r testing.BenchmarkResult) Entry {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	e := Entry{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if ns > 0 {
		e.TweetsPerS = 1e9 / ns
	}
	return e
}

// errBelowTarget marks a report whose headline ratio missed its target;
// main exits 2 so CI can flag the regression while still uploading the
// report artifact.
var errBelowTarget = fmt.Errorf("benchreport: below target")

func main() {
	out := flag.String("out", "", "output file ('-' for stdout; defaults per mode)")
	cluster := flag.Bool("cluster", false, "benchmark the cluster engine's delta broadcasts instead of the feature path")
	users := flag.Bool("userstate", false, "benchmark the user-state store (Observe at 1M distinct users under a 100k cap, 16 goroutines)")
	obsMode := flag.Bool("obs", false, "benchmark the tracing layer: span lifecycle allocs and traced-vs-untraced pipeline overhead")
	ilog := flag.Bool("ingestlog", false, "benchmark the durable ingest log: append per fsync policy, segment reads, and disk replay")
	snap := flag.Bool("snapshot", false, "benchmark compiled inference snapshots: zero-alloc classify, speedup vs the locked path, incremental rebuild")
	ingress := flag.Bool("ingress", false, "benchmark the zero-alloc ingress decode and extraction cache: decode allocs, cache hit cost, end-to-end ingest at 0%/30% duplicate ratio")
	verify := flag.Bool("verify-noalloc", false, "cross-check //redvet:noalloc gate annotations against the benchmark alloc gates (no benchmarks run)")
	flag.Parse()
	if *verify {
		if err := verifyNoalloc(); err != nil {
			if err == errBelowTarget {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_featurepath.json"
		if *cluster {
			*out = "BENCH_cluster.json"
		}
		if *users {
			*out = "BENCH_userstate.json"
		}
		if *obsMode {
			*out = "BENCH_obs.json"
		}
		if *ilog {
			*out = "BENCH_ingestlog.json"
		}
		if *snap {
			*out = "BENCH_snapshot.json"
		}
		if *ingress {
			*out = "BENCH_ingress.json"
		}
	}
	if *ingress {
		if err := ingressBench(*out); err != nil {
			if err == errBelowTarget {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *snap {
		if err := snapshotBench(*out); err != nil {
			if err == errBelowTarget {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *ilog {
		if err := ingestlogBench(*out); err != nil {
			if err == errBelowTarget {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *obsMode {
		if err := obsBench(*out); err != nil {
			if err == errBelowTarget {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *cluster {
		if err := clusterBench(*out); err != nil {
			if err == errBelowTarget {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *users {
		if err := userstateBench(*out); err != nil {
			if err == errBelowTarget {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	tweets := benchTweets(2000)
	ext := feature.NewExtractor(feature.DefaultConfig())

	fast := testing.Benchmark(func(b *testing.B) {
		dst := make([]float64, feature.NumFeatures)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ext.ExtractInto(dst, &tweets[i%len(tweets)])
		}
	})
	legacy := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ext.ExtractLegacy(&tweets[i%len(tweets)])
		}
	})
	scanFast := testing.Benchmark(func(b *testing.B) {
		var sc text.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.Scan(tweets[i%len(tweets)].Text)
		}
	})
	scanLegacy := testing.Benchmark(func(b *testing.B) {
		opts := text.DefaultCleanOptions()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := tweets[i%len(tweets)].Text
			_ = text.Tokenize(text.Clean(s, opts))
			text.CountTokenKind(s, text.IsHashtagToken)
			text.CountTokenKind(s, text.IsURLToken)
			text.CountUpperWords(s)
		}
	})

	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CPUModel:      cpuModel(),
		Benchmarks: []Entry{
			entry("FeaturePathFast", fast),
			entry("FeaturePathLegacy", legacy),
			entry("FeaturePathScan", scanFast),
			entry("FeaturePathScanLegacy", scanLegacy),
		},
		ExtractAllocsFast: fast.AllocsPerOp(),
		ExtractAllocsSlow: legacy.AllocsPerOp(),
	}
	if f := float64(fast.T.Nanoseconds()) / float64(fast.N); f > 0 {
		rep.ExtractSpeedup = (float64(legacy.T.Nanoseconds()) / float64(legacy.N)) / f
	}
	if f := float64(scanFast.T.Nanoseconds()) / float64(scanFast.N); f > 0 {
		rep.ScanSpeedup = (float64(scanLegacy.T.Nanoseconds()) / float64(scanLegacy.N)) / f
	}
	rep.MeetsTargetSpeedup = rep.ExtractSpeedup >= 2
	rep.MeetsTargetAllocs = rep.ExtractAllocsSlow >= 5*maxInt64(rep.ExtractAllocsFast, 1)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("extract: %.0f tweets/s fast (%d allocs/op) vs %.0f tweets/s legacy (%d allocs/op) — %.2fx\n",
		1e9/(float64(fast.T.Nanoseconds())/float64(fast.N)), fast.AllocsPerOp(),
		1e9/(float64(legacy.T.Nanoseconds())/float64(legacy.N)), legacy.AllocsPerOp(),
		rep.ExtractSpeedup)
	if !rep.MeetsTargetSpeedup || !rep.MeetsTargetAllocs {
		fmt.Fprintln(os.Stderr, "benchreport: WARNING: below the 2x speedup / 5x alloc-reduction target")
		os.Exit(2)
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
