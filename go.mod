module redhanded

go 1.24
