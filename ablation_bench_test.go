// Ablation benchmarks for the design choices DESIGN.md calls out: the
// distributed statistics-merge training strategy, the per-batch model
// broadcast, leaf prediction modes, normalization modes, and the adaptive
// bag-of-words.
package redhanded_test

import (
	"fmt"
	"testing"

	"redhanded/internal/core"
	"redhanded/internal/engine"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

// ablationData caches a labeled dataset for the ablation benchmarks.
var ablationData = twitterdata.GenerateAggression(twitterdata.AggressionConfig{
	Seed: 9, Days: 10, NormalCount: 4000, AbusiveCount: 2000, HatefulCount: 400,
})

// ablationInstances caches extracted features for pure-model benchmarks.
var ablationInstances = func() []ml.Instance {
	ext := feature.NewExtractor(feature.DefaultConfig())
	out := make([]ml.Instance, 0, len(ablationData))
	for i := range ablationData {
		tw := &ablationData[i]
		out = append(out, ml.NewInstance(ext.Extract(tw), core.ThreeClass.LabelIndex(tw.Label)))
	}
	return out
}()

// BenchmarkAblationMergeStrategy compares sequential per-instance HT
// training against the distributed accumulate-and-merge path the engines
// use, including the resulting model quality.
func BenchmarkAblationMergeStrategy(b *testing.B) {
	newHT := func() *stream.HoeffdingTree {
		return stream.NewHoeffdingTree(stream.HTConfig{NumClasses: 3, NumFeatures: feature.NumFeatures})
	}
	holdout := ablationInstances[:2000]
	train := ablationInstances[2000:]
	accuracy := func(m ml.Classifier) float64 {
		correct := 0
		for _, in := range holdout {
			if m.Predict(in.X).ArgMax() == in.Label {
				correct++
			}
		}
		return float64(correct) / float64(len(holdout))
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ht := newHT()
			for _, in := range train {
				ht.Train(in)
			}
			b.ReportMetric(accuracy(ht), "holdout-acc")
		}
	})
	for _, tasks := range []int{2, 8} {
		b.Run(fmt.Sprintf("merge-%dtasks", tasks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ht := newHT()
				for start := 0; start < len(train); start += 1000 {
					end := start + 1000
					if end > len(train) {
						end = len(train)
					}
					accs := make([]ml.Accumulator, tasks)
					for t := range accs {
						accs[t] = ht.NewAccumulator()
					}
					for j, in := range train[start:end] {
						accs[j%tasks].Observe(in)
					}
					ht.ApplyAccumulators(accs)
				}
				b.ReportMetric(accuracy(ht), "holdout-acc")
			}
		})
	}
}

// BenchmarkAblationBroadcast measures the cost of the per-batch model
// broadcast emulation (serialize + restore each micro-batch).
func BenchmarkAblationBroadcast(b *testing.B) {
	for _, emulate := range []bool{false, true} {
		b.Run(fmt.Sprintf("emulate=%v", emulate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.SampleStep = 0
				p := core.NewPipeline(opts)
				cfg := engine.SparkSingleConfig()
				cfg.EmulateBroadcast = emulate
				if _, err := engine.RunMicroBatch(p, engine.NewSliceSource(ablationData), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLeafPrediction compares the HT leaf predictors.
func BenchmarkAblationLeafPrediction(b *testing.B) {
	modes := map[string]stream.LeafPrediction{
		"majority-class": stream.MajorityClass,
		"naive-bayes":    stream.NaiveBayes,
		"nb-adaptive":    stream.NaiveBayesAdaptive,
	}
	for name, mode := range modes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ht := stream.NewHoeffdingTree(stream.HTConfig{
					NumClasses: 3, NumFeatures: feature.NumFeatures, LeafPrediction: mode,
				})
				correct := 0
				for _, in := range ablationInstances {
					if ht.Predict(in.X).ArgMax() == in.Label {
						correct++
					}
					ht.Train(in)
				}
				b.ReportMetric(float64(correct)/float64(len(ablationInstances)), "preq-acc")
			}
		})
	}
}

// BenchmarkAblationNormalization compares the pipeline under the four
// normalization modes (the Fig. 7/8 design space).
func BenchmarkAblationNormalization(b *testing.B) {
	for _, mode := range []norm.Mode{norm.None, norm.MinMax, norm.MinMaxRobust, norm.ZScore} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Normalization = mode
				opts.SampleStep = 0
				p := core.NewPipeline(opts)
				p.ProcessAll(ablationData)
				b.ReportMetric(p.Summary().F1, "F1")
			}
		})
	}
}

// BenchmarkAblationAdaptiveBoW compares frozen vs adaptive BoW end to end.
func BenchmarkAblationAdaptiveBoW(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		b.Run(fmt.Sprintf("adaptive=%v", adaptive), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.AdaptiveBoW = adaptive
				opts.SampleStep = 0
				p := core.NewPipeline(opts)
				p.ProcessAll(ablationData)
				b.ReportMetric(p.Summary().F1, "F1")
			}
		})
	}
}
