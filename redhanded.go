// Package redhanded is a real-time aggression detection framework for
// social media streams, reproducing "Catching them red-handed: Real-time
// Aggression Detection on Social Media" (Herodotou, Chatzakou, Kourtellis —
// ICDE 2021) as a pure-Go library.
//
// The framework embraces the streaming machine-learning paradigm: its
// classifiers (Hoeffding Tree, Adaptive Random Forest, Streaming Logistic
// Regression) update incrementally as labeled tweets arrive, so the model
// stays current as aggressive behavior evolves, while the full pipeline —
// preprocessing, feature extraction, normalization, training, prediction,
// alerting, evaluation, sampling — scales from a single goroutine to a
// multi-node micro-batch cluster over TCP.
//
// Quick start:
//
//	p := redhanded.NewPipeline(redhanded.DefaultOptions())
//	for tweet := range tweets {
//		res := p.Process(&tweet)
//		if res.Alerted {
//			// forward to moderators
//		}
//	}
//
// Complete programs live in the examples directory:
//
//   - examples/quickstart: train and evaluate on the synthetic dataset
//   - examples/moderation: alert handling and account suspension
//   - examples/firehose: sustained-throughput stream processing
//   - examples/driftwatch: concept-drift detection over the stream
//   - examples/relatedbehaviors: sarcasm and offensive-language datasets
//   - examples/serving: the HTTP serving subsystem with live SSE alerts
//   - examples/repeatoffender: the bounded per-user state store catching
//     repeat offenders (sessions, escalation, suspension, eviction)
//
// See DESIGN.md for the architecture.
package redhanded

import (
	"redhanded/internal/core"
	"redhanded/internal/engine"
	"redhanded/internal/eval"
	"redhanded/internal/metrics"
	"redhanded/internal/serve"
	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// Pipeline is the end-to-end detection pipeline (Fig. 1 of the paper).
type Pipeline = core.Pipeline

// Options configures a Pipeline.
type Options = core.Options

// Result reports what the pipeline did with one tweet.
type Result = core.Result

// Alert is raised when a tweet is predicted aggressive with sufficient
// confidence.
type Alert = core.Alert

// AlertSink consumes alerts.
type AlertSink = core.AlertSink

// AlertSinkFunc adapts a function to AlertSink.
type AlertSinkFunc = core.AlertSinkFunc

// Report bundles accuracy, precision, recall, and F1.
type Report = eval.Report

// Class schemes: the 3-class problem distinguishes normal/abusive/hateful;
// the 2-class problem merges abusive and hateful into "aggressive".
const (
	ThreeClass = core.ThreeClass
	TwoClass   = core.TwoClass
)

// Streaming model kinds.
const (
	ModelHT  = core.ModelHT
	ModelARF = core.ModelARF
	ModelSLR = core.ModelSLR
)

// Tweet is the Twitter-API-shaped stream element.
type Tweet = twitterdata.Tweet

// User is a tweet's author profile.
type User = twitterdata.User

// Dataset labels.
const (
	LabelNormal  = twitterdata.LabelNormal
	LabelAbusive = twitterdata.LabelAbusive
	LabelHateful = twitterdata.LabelHateful
)

// NewPipeline assembles the detection framework.
//
// Every model kind (HT, ARF, SLR) supports Checkpoint/Restore for
// surviving restarts without losing the incrementally learned state, and
// runs on every engine, the TCP cluster included.
func NewPipeline(opts Options) *Pipeline { return core.NewPipeline(opts) }

// Per-user state: every Pipeline owns a sharded, memory-bounded,
// checkpointable userstate.Store that unifies session windows, offense
// histories, and escalation scoring. Session-level detection (the
// paper's future-work windowing extension) reads from it.
type (
	// SessionConfig tunes per-user sliding windows.
	SessionConfig = core.SessionConfig
	// SessionTracker flags users with repetitive hostile activity.
	SessionTracker = core.SessionTracker
	// SessionVerdict is one flagged user window.
	SessionVerdict = core.SessionVerdict
	// EscalationVerdict flags a user trending toward aggression across
	// sessions, not just within one window.
	EscalationVerdict = core.EscalationVerdict
	// UserStateConfig bounds and tunes the per-user state store
	// (Options.Users): shard count, record cap, idle TTL, escalation
	// scoring.
	UserStateConfig = userstate.Config
	// UserStore is the sharded per-user state store (Pipeline.Users).
	UserStore = userstate.Store
	// UserSnapshot is one user's state copy (UserStore.Lookup and the
	// serving layer's GET /v1/users/{id}).
	UserSnapshot = userstate.Snapshot
	// VerdictSink consumes session and escalation verdicts
	// (Pipeline.SubscribeVerdicts).
	VerdictSink = core.VerdictSink
)

// NewSessionTracker aggregates per-tweet predictions into per-user
// session verdicts.
func NewSessionTracker(cfg SessionConfig) *SessionTracker {
	return core.NewSessionTracker(cfg)
}

// DefaultSessionConfig returns 1-hour windows flagging >= 60% aggressive.
func DefaultSessionConfig() SessionConfig { return core.DefaultSessionConfig() }

// DefaultOptions returns the configuration of the paper's main
// experiments: Hoeffding Tree, 3-class, preprocessing, minmax-without-
// outliers normalization, and the adaptive bag-of-words all enabled.
func DefaultOptions() Options { return core.DefaultOptions() }

// Execution engines (§V-E of the paper).
type (
	// Source yields a stream of tweets.
	Source = engine.Source
	// EngineStats summarises one engine run.
	EngineStats = engine.Stats
	// MicroBatchConfig configures the Spark-Streaming-style engine.
	MicroBatchConfig = engine.MicroBatchConfig
	// ClusterConfig configures the multi-node TCP engine.
	ClusterConfig = engine.ClusterConfig
	// Executor is one cluster node.
	Executor = engine.Executor
)

// NewSliceSource streams a dataset slice.
func NewSliceSource(tweets []Tweet) Source { return engine.NewSliceSource(tweets) }

// RunSequential processes the stream one tweet at a time (the MOA model).
func RunSequential(p *Pipeline, src Source) EngineStats {
	return engine.RunSequential(p, src)
}

// RunMicroBatch processes the stream with micro-batch parallelism.
func RunMicroBatch(p *Pipeline, src Source, cfg MicroBatchConfig) (EngineStats, error) {
	return engine.RunMicroBatch(p, src, cfg)
}

// RunCluster processes the stream across TCP executor nodes.
func RunCluster(p *Pipeline, src Source, cfg ClusterConfig) (EngineStats, error) {
	return engine.RunCluster(p, src, cfg)
}

// StartExecutor launches a cluster node listening on addr.
func StartExecutor(addr string, workers int) (*Executor, error) {
	return engine.StartExecutor(addr, workers)
}

// SparkSingleConfig mimics single-threaded Spark execution.
func SparkSingleConfig() MicroBatchConfig { return engine.SparkSingleConfig() }

// SparkLocalConfig mimics one multi-threaded Spark worker.
func SparkLocalConfig(cores int) MicroBatchConfig { return engine.SparkLocalConfig(cores) }

// Synthetic datasets (see DESIGN.md for the calibration to the paper's
// reported statistics).
type (
	// AggressionConfig sizes the synthetic aggression dataset.
	AggressionConfig = twitterdata.AggressionConfig
	// SarcasmConfig sizes the synthetic sarcasm dataset.
	SarcasmConfig = twitterdata.SarcasmConfig
	// OffensiveConfig sizes the synthetic racism/sexism dataset.
	OffensiveConfig = twitterdata.OffensiveConfig
)

// GenerateAggression produces the labeled aggression dataset.
func GenerateAggression(cfg AggressionConfig) []Tweet {
	return twitterdata.GenerateAggression(cfg)
}

// DefaultAggressionConfig mirrors the paper's 86k dataset (53,835 normal,
// 27,179 abusive, 4,970 hateful over 10 days).
func DefaultAggressionConfig() AggressionConfig {
	return twitterdata.DefaultAggressionConfig()
}

// GenerateSarcasm produces the sarcasm dataset of §V-F.
func GenerateSarcasm(cfg SarcasmConfig) []Tweet { return twitterdata.GenerateSarcasm(cfg) }

// GenerateOffensive produces the racism/sexism dataset of §V-F.
func GenerateOffensive(cfg OffensiveConfig) []Tweet { return twitterdata.GenerateOffensive(cfg) }

// Real-time serving subsystem: a sharded HTTP front end over the pipeline
// with bounded-queue backpressure, SSE alert streaming, and
// Prometheus-format metrics (see internal/serve and cmd/aggroserve).
type (
	// Server is the sharded HTTP ingestion server. It implements
	// http.Handler; pass it to http.Server or httptest directly.
	Server = serve.Server
	// ServerOptions configures a Server.
	ServerOptions = serve.Options
	// ServerStats is the GET /v1/stats payload.
	ServerStats = serve.Stats
	// MetricsRegistry collects counters, gauges, and histograms with
	// Prometheus text-format exposition.
	MetricsRegistry = metrics.Registry
)

// NewServer builds the sharded serving front end and starts its shard
// goroutines. Tweets are routed to shards by hash(userID) % shards so
// per-user state keeps affinity.
func NewServer(opts ServerOptions) *Server { return serve.NewServer(opts) }

// DefaultServerOptions returns the paper-default pipeline behind 4 shards.
func DefaultServerOptions() ServerOptions { return serve.DefaultServerOptions() }

// DefaultMetrics returns the process-wide metrics registry that the
// engines and the alerting step instrument.
func DefaultMetrics() *MetricsRegistry { return metrics.Default() }
