package redhanded_test

import (
	"testing"

	"redhanded"
)

// TestFacadeEndToEnd exercises the public API surface the examples use:
// dataset generation, pipeline construction, alert subscription, and all
// three execution engines.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := redhanded.AggressionConfig{
		Seed: 5, Days: 10, NormalCount: 2000, AbusiveCount: 1000, HatefulCount: 200,
	}
	tweets := redhanded.GenerateAggression(cfg)
	if len(tweets) != 3200 {
		t.Fatalf("generated %d tweets", len(tweets))
	}

	opts := redhanded.DefaultOptions()
	opts.Scheme = redhanded.TwoClass
	p := redhanded.NewPipeline(opts)

	alerts := 0
	p.Alerter().Subscribe(redhanded.AlertSinkFunc(func(redhanded.Alert) { alerts++ }))

	stats := redhanded.RunSequential(p, redhanded.NewSliceSource(tweets))
	if stats.Processed != int64(len(tweets)) {
		t.Fatalf("processed %d", stats.Processed)
	}
	if r := p.Summary(); r.F1 < 0.7 {
		t.Fatalf("facade pipeline F1 = %v", r.F1)
	}
	if alerts == 0 {
		t.Fatalf("no alerts delivered through the facade")
	}
}

func TestFacadeMicroBatchAndCluster(t *testing.T) {
	tweets := redhanded.GenerateAggression(redhanded.AggressionConfig{
		Seed: 6, Days: 10, NormalCount: 1500, AbusiveCount: 700, HatefulCount: 150,
	})

	p := redhanded.NewPipeline(redhanded.DefaultOptions())
	if _, err := redhanded.RunMicroBatch(p, redhanded.NewSliceSource(tweets), redhanded.SparkLocalConfig(4)); err != nil {
		t.Fatal(err)
	}

	ex, err := redhanded.StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	p2 := redhanded.NewPipeline(redhanded.DefaultOptions())
	stats, err := redhanded.RunCluster(p2, redhanded.NewSliceSource(tweets), redhanded.ClusterConfig{
		Executors: []string{ex.Addr()}, BatchSize: 500, TasksPerExecutor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != int64(len(tweets)) {
		t.Fatalf("cluster processed %d", stats.Processed)
	}
}

func TestFacadeRelatedDatasets(t *testing.T) {
	s := redhanded.GenerateSarcasm(redhanded.SarcasmConfig{
		Seed: 7, SarcasticCount: 50, NormalCount: 200, Days: 4,
	})
	if len(s) != 250 {
		t.Fatalf("sarcasm size %d", len(s))
	}
	o := redhanded.GenerateOffensive(redhanded.OffensiveConfig{
		Seed: 8, RacistCount: 20, SexistCount: 30, NoneCount: 100, Days: 4,
	})
	if len(o) != 150 {
		t.Fatalf("offensive size %d", len(o))
	}
	labels := map[string]bool{}
	for i := range o {
		labels[o[i].Label] = true
	}
	if !labels[redhanded.LabelNormal] && !labels["none"] {
		t.Fatalf("offensive labels missing: %v", labels)
	}
}

func TestFacadeConstants(t *testing.T) {
	if redhanded.ThreeClass.NumClasses() != 3 || redhanded.TwoClass.NumClasses() != 2 {
		t.Fatalf("scheme constants broken")
	}
	if redhanded.ModelHT.String() != "HT" {
		t.Fatalf("model constants broken")
	}
	if redhanded.DefaultAggressionConfig().NormalCount != 53835 {
		t.Fatalf("default dataset size wrong")
	}
}
